// Package service turns the batch reproduction into a resident system: a
// Scheduler runs many core.Pipeline instances concurrently on a bounded
// worker pool, with per-job lifecycle (queued → running → paused →
// done/failed/cancelled), progress snapshots, pause/resume backed by the
// gob pipeline checkpoints, graceful drain on shutdown, and a Prometheus
// text-format metrics surface. cmd/nestserved exposes it over HTTP.
//
// Concurrency model: each job is executed by exactly one worker goroutine
// at a time, which owns the job's pipeline (and hence its mpi worlds,
// tracker and weather model) exclusively — jobs never share mutable
// simulation state, so the only cross-goroutine surfaces are the Job's
// snapshot fields (guarded by Job.mu), the Scheduler's registry (guarded
// by Scheduler.mu) and the atomic metrics counters. The virtual-time MPI
// runtime spawns goroutines *within* a job (one per rank), but those are
// created and joined inside a single pipeline step, entirely under the
// owning worker.
package service

import (
	"bytes"
	"fmt"
	"strings"

	"nestdiff/internal/core"
	"nestdiff/internal/elastic"
	"nestdiff/internal/faults"
	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// JobConfig describes one simulation job: the machine to model, the
// reallocation strategy, the weather scenario and the pipeline shape. It
// mirrors core.PipelineConfig plus the machine/strategy choice, and is the
// JSON body of POST /jobs.
type JobConfig struct {
	// Cores is the total processor count P of the modelled machine.
	Cores int `json:"cores"`
	// Machine selects the interconnect: "torus" (BG/L-style 3D torus,
	// default), "mesh" (torus without wraparound) or "switched".
	Machine string `json:"machine,omitempty"`
	// CoresPerNode applies to switched machines (default 8).
	CoresPerNode int `json:"cores_per_node,omitempty"`
	// Strategy is the reallocation policy: "scratch", "diffusion"
	// (default) or "dynamic".
	Strategy string `json:"strategy,omitempty"`
	// Scenario drives storm genesis: "monsoon" (default), "cyclone",
	// "burst", or "cells" to inject the explicit Cells list at start.
	Scenario string `json:"scenario,omitempty"`
	// Seed seeds the scenario schedule and the weather model.
	Seed int64 `json:"seed,omitempty"`
	// Steps is the number of parent simulation steps to run.
	Steps int `json:"steps"`
	// Interval is the number of parent steps between PDA invocations.
	Interval int `json:"interval,omitempty"`
	// AnalysisRanks is N, the number of data-analysis processes.
	AnalysisRanks int `json:"analysis_ranks,omitempty"`
	// MaxNests caps simultaneous nests (0 = the default cap of 9).
	MaxNests int `json:"max_nests,omitempty"`
	// Distributed runs nests block-distributed with executed Alltoallv
	// redistribution (the paper's actual runtime arrangement).
	Distributed bool `json:"distributed,omitempty"`
	// NX, NY override the parent domain extents ("cells" scenario only;
	// scripted scenarios fix their own domain).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// WRFGrid optionally overrides the split-file decomposition [px, py].
	WRFGrid [2]int `json:"wrf_grid,omitempty"`
	// Cells is the explicit initial storm population of the "cells"
	// scenario.
	Cells []wrfsim.Cell `json:"cells,omitempty"`
	// StepDelayMS throttles the job by sleeping this many milliseconds
	// between parent steps — useful for demos and for exercising
	// pause/resume deterministically.
	StepDelayMS int `json:"step_delay_ms,omitempty"`
	// MaxRetries is how many times a failed job is retried from its last
	// good checkpoint (exponential backoff with jitter between attempts).
	// Zero fails the job on its first error.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMS is the base retry backoff: attempt n waits
	// base·2^(n-1), ±25% deterministic jitter, capped at 30 s. Zero means
	// 100 ms.
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// AutoCheckpointSteps checkpoints the running pipeline in memory (and,
	// with a scheduler CheckpointDir, on disk) every N parent steps, so a
	// retry re-executes at most N steps. Zero means 25; negative disables
	// auto-checkpointing.
	AutoCheckpointSteps int `json:"auto_checkpoint_steps,omitempty"`
	// CkptDeltaMax bounds the delta-checkpoint chain: after a full base
	// checkpoint, up to this many dirty-nest deltas are cut before the next
	// full base. Zero means the default (8); negative disables deltas and
	// writes every checkpoint as a full base.
	CkptDeltaMax int `json:"ckpt_delta_max,omitempty"`
	// DeadlineMS bounds the job's cumulative running wall-clock time
	// across retries; a job over its deadline fails terminally and is not
	// retried. Zero means no deadline.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Trace enables structured tracing for this job: the pipeline,
	// tracker, redistribution and scheduler emit events into a bounded
	// per-job ring buffer queryable via GET /jobs/{id}/trace and
	// /jobs/{id}/timeline (and, with a scheduler LedgerDir, an on-disk
	// JSONL ledger). Off by default: an untraced job pays one pointer
	// check per event site.
	Trace bool `json:"trace,omitempty"`
	// TraceBuffer bounds the traced job's in-memory event ring. Zero
	// means 4096; older events are evicted (the trace endpoint reports
	// how many).
	TraceBuffer int `json:"trace_buffer,omitempty"`
	// Faults optionally injects deterministic faults into the job's
	// pipeline and checkpoint writes — chaos tests and drills only; it is
	// not settable over the HTTP API.
	Faults *faults.Plan `json:"-"`
}

// DefaultJobConfig returns a laptop-scale monsoon job on a 256-core torus.
func DefaultJobConfig() JobConfig {
	return JobConfig{
		Cores:         256,
		Machine:       "torus",
		Strategy:      "diffusion",
		Scenario:      "monsoon",
		Seed:          2607,
		Steps:         300,
		Interval:      5,
		AnalysisRanks: 16,
		MaxNests:      9,
	}
}

// withDefaults fills the zero-valued optional fields.
func (c JobConfig) withDefaults() JobConfig {
	if c.Machine == "" {
		c.Machine = "torus"
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 8
	}
	if c.Strategy == "" {
		c.Strategy = "diffusion"
	}
	if c.Scenario == "" {
		c.Scenario = "monsoon"
	}
	if c.Seed == 0 {
		c.Seed = 2607
	}
	if c.Interval == 0 {
		c.Interval = 5
	}
	if c.AnalysisRanks == 0 {
		c.AnalysisRanks = 16
	}
	if c.MaxNests == 0 {
		c.MaxNests = 9
	}
	if c.RetryBackoffMS == 0 {
		c.RetryBackoffMS = 100
	}
	if c.AutoCheckpointSteps == 0 {
		c.AutoCheckpointSteps = 25
	}
	return c
}

// Validate rejects configurations the builder cannot honour.
func (c JobConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("service: invalid core count %d", c.Cores)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("service: invalid step count %d", c.Steps)
	}
	if c.Interval < 0 || c.AnalysisRanks < 0 || c.MaxNests < 0 || c.StepDelayMS < 0 {
		return fmt.Errorf("service: negative parameter in job config")
	}
	if c.MaxRetries < 0 || c.RetryBackoffMS < 0 || c.DeadlineMS < 0 {
		return fmt.Errorf("service: negative retry/deadline parameter in job config")
	}
	if c.TraceBuffer < 0 {
		return fmt.Errorf("service: negative trace buffer in job config")
	}
	if _, err := ParseStrategy(c.withDefaults().Strategy); err != nil {
		return err
	}
	switch strings.ToLower(c.withDefaults().Machine) {
	case "torus", "mesh", "switched":
	default:
		return fmt.Errorf("service: unknown machine %q (want torus, mesh or switched)", c.Machine)
	}
	switch strings.ToLower(c.withDefaults().Scenario) {
	case "monsoon", "cyclone", "burst":
	case "cells":
		if len(c.Cells) == 0 {
			return fmt.Errorf("service: scenario %q needs a non-empty cells list", c.Scenario)
		}
	default:
		return fmt.Errorf("service: unknown scenario %q (want monsoon, cyclone, burst or cells)", c.Scenario)
	}
	return nil
}

// ParseStrategy resolves a strategy name to the core constant.
func ParseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "scratch":
		return core.Scratch, nil
	case "diffusion", "tree", "tree-based":
		return core.Diffusion, nil
	case "dynamic":
		return core.Dynamic, nil
	}
	return 0, fmt.Errorf("service: unknown strategy %q (want scratch, diffusion or dynamic)", s)
}

// machine bundles the modelled hardware and performance models a job's
// tracker needs. Each job builds its own so no mutable model state is ever
// shared between worker goroutines.
type machine struct {
	grid   geom.Grid
	net    topology.Network
	model  *perfmodel.ExecModel
	oracle *perfmodel.Oracle
}

// buildMachine constructs the machine a job config names. It delegates to
// internal/elastic so a mid-run resize rebuilds the machine through the
// exact same path a fresh job does — the grid and models only ever differ
// by the core count.
func buildMachine(cfg JobConfig) (*machine, error) {
	m, err := elastic.BuildMachine(cfg.Cores, cfg.Machine, cfg.CoresPerNode)
	if err != nil {
		return nil, err
	}
	return &machine{grid: m.Grid, net: m.Net, model: m.Model, oracle: m.Oracle}, nil
}

// buildSchedule resolves the scenario to a genesis schedule plus the
// domain extents it was designed for ("cells" has an empty schedule; its
// storms are injected at model build).
func buildSchedule(cfg JobConfig) ([]scenario.TimedCell, int, int, error) {
	switch strings.ToLower(cfg.Scenario) {
	case "monsoon":
		mc := scenario.DefaultMonsoonConfig()
		mc.Steps = cfg.Steps
		mc.Seed = cfg.Seed
		return scenario.MonsoonSchedule(mc), mc.NX, mc.NY, nil
	case "cyclone":
		cc := scenario.DefaultCycloneConfig()
		cc.Steps = cfg.Steps
		cc.Seed = cfg.Seed
		return scenario.CycloneSchedule(cc), cc.NX, cc.NY, nil
	case "burst":
		bc := scenario.DefaultBurstConfig()
		bc.Steps = cfg.Steps
		bc.Seed = cfg.Seed
		return scenario.BurstSchedule(bc), bc.NX, bc.NY, nil
	case "cells":
		nx, ny := cfg.NX, cfg.NY
		if nx == 0 || ny == 0 {
			nx, ny = 96, 72
		}
		return nil, nx, ny, nil
	}
	return nil, 0, 0, fmt.Errorf("service: unknown scenario %q", cfg.Scenario)
}

// wrfGridFor picks the split-file decomposition: the explicit override, or
// the calibrated defaults for the known domain shapes.
func wrfGridFor(cfg JobConfig, nx, ny int) geom.Grid {
	if cfg.WRFGrid[0] > 0 && cfg.WRFGrid[1] > 0 {
		return geom.NewGrid(cfg.WRFGrid[0], cfg.WRFGrid[1])
	}
	if nx == 180 && ny == 105 {
		return geom.NewGrid(18, 15) // the scripted scenarios' domain
	}
	return geom.NewGrid(8, 6)
}

// run is a job's executable state: the pipeline plus the scenario
// schedule cursor and the delta-checkpoint writer tracking the pipeline's
// dirty state across checkpoints. It is owned by exactly one worker
// goroutine at a time; the writer's shadow state dies with the attempt, so
// every restored run opens its chain with a full base checkpoint.
type run struct {
	pipe  *core.Pipeline
	sched []scenario.TimedCell
	si    int
	ckw   *core.CheckpointWriter
}

// newCkptWriter builds the run's checkpoint writer from the job config.
func newCkptWriter(cfg JobConfig) *core.CheckpointWriter {
	return core.NewCheckpointWriter(core.CheckpointWriterOptions{MaxDeltas: cfg.CkptDeltaMax})
}

// newRun builds a fresh run from a job config.
func newRun(cfg JobConfig) (*run, error) {
	cfg = cfg.withDefaults()
	strat, err := ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	m, err := buildMachine(cfg)
	if err != nil {
		return nil, err
	}
	tracker, err := core.NewTracker(m.grid, m.net, m.model, m.oracle, strat, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	sched, nx, ny, err := buildSchedule(cfg)
	if err != nil {
		return nil, err
	}
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = nx, ny
	wcfg.SpawnRate = 0
	wcfg.Seed = cfg.Seed
	if strings.ToLower(cfg.Scenario) != "cells" {
		// Compact-storm parameterization (as in cmd/nestsim): sharper OLR
		// signatures keep detected clusters storm-sized.
		wcfg.MergeEnabled = strings.ToLower(cfg.Scenario) != "cyclone"
		wcfg.DecayTau = 2400
		wcfg.OLRPerQ = 10
	}
	model, err := wrfsim.NewModel(wcfg)
	if err != nil {
		return nil, err
	}
	for _, c := range cfg.Cells {
		if err := model.InjectCell(c); err != nil {
			return nil, err
		}
	}
	pipe, err := core.NewPipeline(model, tracker, core.PipelineConfig{
		WRFGrid:       wrfGridFor(cfg, nx, ny),
		AnalysisRanks: cfg.AnalysisRanks,
		Interval:      cfg.Interval,
		PDA:           pda.DefaultOptions(),
		MaxNests:      cfg.MaxNests,
		Distributed:   cfg.Distributed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		pipe.SetFaultPlan(cfg.Faults)
	}
	return &run{pipe: pipe, sched: sched, ckw: newCkptWriter(cfg)}, nil
}

// restoreRun rebuilds a run from a pause checkpoint: the machine and
// performance models are reconstructed from the config (they are
// configuration, not state) and the pipeline is restored from the gob
// checkpoint. The schedule cursor is recomputed from the restored step
// count, so genesis continues exactly where it left off.
func restoreRun(cfg JobConfig, checkpoint []byte) (*run, error) {
	cfg = cfg.withDefaults()
	m, err := buildMachine(cfg)
	if err != nil {
		return nil, err
	}
	pipe, err := core.RestorePipeline(bytes.NewReader(checkpoint), m.net, m.model, m.oracle)
	if err != nil {
		return nil, err
	}
	if got := pipe.Tracker().Grid(); got != m.grid {
		return nil, fmt.Errorf("%w: checkpoint holds a %dx%d grid (%d procs), config names %d cores (%dx%d)",
			core.ErrProcMismatch, got.Px, got.Py, got.Size(), cfg.Cores, m.grid.Px, m.grid.Py)
	}
	sched, _, _, err := buildSchedule(cfg)
	if err != nil {
		return nil, err
	}
	si := 0
	for si < len(sched) && sched[si].AtStep < pipe.StepCount() {
		si++
	}
	if cfg.Faults != nil {
		pipe.SetFaultPlan(cfg.Faults)
	}
	return &run{pipe: pipe, sched: sched, si: si, ckw: newCkptWriter(cfg)}, nil
}

// step injects the storms scheduled for the upcoming parent step, then
// advances the pipeline by one step.
func (r *run) step() error {
	at := r.pipe.StepCount()
	for r.si < len(r.sched) && r.sched[r.si].AtStep == at {
		if err := r.pipe.Model().InjectCell(r.sched[r.si].Cell); err != nil {
			return err
		}
		r.si++
	}
	return r.pipe.Step()
}
