package service

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/field"
	"nestdiff/internal/obs"
	"nestdiff/internal/serve"
)

// errStaleStep rejects a ?step= request for anything but the latest
// materialized snapshot; the HTTP layer maps it to 404 so clients poll
// forward, never backward.
var errStaleStep = errors.New("service: requested step is not the latest snapshot")

// fieldAcquireWait bounds how long a field read waits for the running
// job's next step boundary before settling for the last published
// snapshot (or 404 when none exists yet).
const fieldAcquireWait = 5 * time.Second

// exportFreshWait bounds how long a checkpoint export waits for the
// running job to cut a boundary checkpoint before shipping the last
// good one. The step loop itself is never blocked longer than the one
// boundary checkpoint it was going to pay anyway.
const exportFreshWait = 2 * time.Second

// jobSink adapts a job's snapshot publisher to the pipeline's
// step-boundary hook: with no waiting reader it is an integer store;
// with one, it materializes the copy-on-write snapshot on the worker's
// side of the boundary.
type jobSink struct {
	j *Job
}

func (k *jobSink) PublishStep(p *core.Pipeline) {
	k.j.publisher().Publish(p.StepCount(), func() map[string]*field.Field {
		return materializeVars(p)
	})
}

// materializeVars copies the pipeline's readable field state into
// private buffers: the parent model's qcloud and OLR, plus each live
// nest's fine field under "nest:<id>". Distributed nests are gathered —
// Gather reassembles the block decomposition by pure memory reads, no
// collectives — so readers see one contiguous fine grid either way.
func materializeVars(p *core.Pipeline) map[string]*field.Field {
	m := p.Model()
	vars := make(map[string]*field.Field, 2+len(p.Nests())+len(p.DistributedNests()))
	vars["qcloud"] = m.QCloud().Clone()
	vars["olr"] = m.OLR().Clone()
	for id, n := range p.Nests() {
		vars[fmt.Sprintf("nest:%d", id)] = n.QCloud().Clone()
	}
	for id, n := range p.DistributedNests() {
		vars[fmt.Sprintf("nest:%d", id)] = n.Gather()
	}
	return vars
}

// TileCache returns the scheduler's shared tile cache (for metrics and
// tests).
func (s *Scheduler) TileCache() *serve.Cache { return s.tiles }

// ReadField serves GET /jobs/{id}/field: it acquires the job's latest
// step-boundary snapshot (demanding one from the running worker when
// stale) and assembles the quantized tile response for the requested
// var and rect through the shared tile cache.
//
// varName defaults to "qcloud"; rectStr is "x0,y0,w,h" (empty: full
// domain); stepStr, when set, must name the latest snapshot's step —
// only the newest boundary is materialized, older steps 404.
func (s *Scheduler) ReadField(id, varName, rectStr, stepStr string) ([]byte, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	snap, err := j.publisher().Acquire(fieldAcquireWait)
	if err != nil {
		return nil, err
	}
	if stepStr != "" {
		want, perr := strconv.Atoi(stepStr)
		if perr != nil {
			return nil, fmt.Errorf("%w: bad step %q", serve.ErrBadRect, stepStr)
		}
		if want != snap.Step {
			return nil, fmt.Errorf("%w: step %d (latest is %d)", errStaleStep, want, snap.Step)
		}
	}
	if varName == "" {
		varName = "qcloud"
	}
	f, ok := snap.Vars[varName]
	if !ok {
		return nil, fmt.Errorf("%w: unknown var %q (have %v)", serve.ErrBadRect, varName, snap.VarNames())
	}
	rect, err := serve.ParseRect(rectStr, f.Bounds())
	if err != nil {
		return nil, err
	}
	return serve.BuildResponse(s.tiles, j.ID, varName, snap, rect)
}

// jobObsTracer returns a job's tracer for the SSE stream; untraced jobs
// have no event ring to stream.
func (s *Scheduler) jobObsTracer(id string) (*obs.Tracer, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	tr := j.obsTracer()
	if tr == nil {
		return nil, fmt.Errorf("service: job %q is not traced; submit with \"trace\": true to stream events", id)
	}
	return tr, nil
}
