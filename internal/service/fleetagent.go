package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"nestdiff/internal/faults"
)

// AgentConfig joins a worker daemon to a nestctl control plane.
type AgentConfig struct {
	// ControllerURL is the control plane's base URL (http://host:port).
	ControllerURL string
	// WorkerID identifies this worker fleet-wide; it must be stable across
	// heartbeats but need not survive restarts (a restarted worker simply
	// re-registers).
	WorkerID string
	// AdvertiseURL is the base URL the controller should reach this
	// worker's job API on — the public address, not the listen address.
	AdvertiseURL string
	// HeartbeatInterval is the period between heartbeats. Zero means 2s.
	// The controller declares a worker dead after missing several of
	// these, so it must be comfortably under the controller's liveness
	// deadline. On controller unreachability the agent backs off
	// exponentially (with jitter) up to MaxBackoff instead of hammering a
	// dead or partitioned control plane at full rate.
	HeartbeatInterval time.Duration
	// MaxBackoff caps the unreachability backoff. Zero means
	// 8×HeartbeatInterval.
	MaxBackoff time.Duration
	// Sched, when non-nil, lets the agent stamp each heartbeat with the
	// scheduler's job placement epochs and execute the fence commands the
	// controller sends back — the worker half of split-brain fencing.
	Sched *Scheduler
	// Faults, when non-nil, is consulted before every control message:
	// a blocked worker→controller link (faults.Plan.Partition) makes the
	// post fail exactly as an unreachable network would. Chaos drills only.
	Faults *faults.Plan
	// Client overrides the HTTP client (tests); nil uses a 5s-timeout
	// default.
	Client *http.Client
}

// Agent is the worker-side fleet membership client: it registers the
// worker with the controller and then heartbeats until stopped. A
// heartbeat the controller does not recognize (it restarted, or it
// already declared this worker dead) triggers re-registration, as does a
// change in the controller's instance ID (a restart that replayed its WAL
// still announces a fresh instance); membership self-heals after
// control-plane restarts and transient partitions. Registration and
// heartbeats are cheap control messages — job traffic never flows through
// the agent.
type Agent struct {
	cfg    AgentConfig
	client *http.Client
	rng    *rand.Rand // jitter source, seeded per worker ID
	maxOff time.Duration

	mu       sync.Mutex
	instance string // controller instance last seen; change → re-register
	fails    int    // consecutive unreachable heartbeats

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// agentHello is the JSON body of POST /fleet/register; agentBeat of
// POST /fleet/heartbeat and /fleet/deregister. The controller decodes the
// same shapes.
type agentHello struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

type agentBeat struct {
	ID   string           `json:"id"`
	Jobs []JobEpochReport `json:"jobs,omitempty"`
}

// beatReply is the controller's heartbeat response: its instance ID (for
// restart detection) and the job copies this worker must fence because
// their placements moved elsewhere under a higher epoch.
type beatReply struct {
	Status   string           `json:"status"`
	Instance string           `json:"instance,omitempty"`
	Fenced   []JobEpochReport `json:"fenced,omitempty"`
}

// StartAgent registers the worker and starts the heartbeat loop. The
// initial registration is attempted immediately and then retried from the
// heartbeat loop, so a worker that comes up before its controller joins
// the fleet as soon as the controller appears.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ControllerURL == "" || cfg.WorkerID == "" || cfg.AdvertiseURL == "" {
		return nil, fmt.Errorf("service: fleet agent needs controller, worker-id and advertise URLs")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8 * cfg.HeartbeatInterval
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.WorkerID))
	a := &Agent{
		cfg:    cfg,
		client: cfg.Client,
		rng:    rand.New(rand.NewSource(int64(h.Sum64()))),
		maxOff: cfg.MaxBackoff,
		quit:   make(chan struct{}),
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: 5 * time.Second}
	}
	a.register()
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// Stop halts heartbeats without telling the controller. It will notice
// the silence, declare the worker dead after its liveness deadline, and
// hand its jobs to survivors — Stop is exactly how the fleet chaos suite
// makes a worker "die". A deliberate shutdown should call Deregister
// first so survivors take over immediately.
func (a *Agent) Stop() {
	a.once.Do(func() { close(a.quit) })
	a.wg.Wait()
}

// Deregister tells the controller this worker is leaving on purpose — the
// SIGTERM path. The controller marks it dead at once and re-homes its
// jobs on the next sweep, instead of burning the full liveness deadline
// distinguishing a clean shutdown from a crash. Errors are swallowed: if
// the controller is unreachable the liveness deadline covers it anyway.
func (a *Agent) Deregister() {
	a.post("/fleet/deregister", agentBeat{ID: a.cfg.WorkerID})
}

// loop heartbeats on a timer rather than a ticker so the interval can
// stretch: each consecutive failure to reach the controller doubles the
// wait (±25% jitter) up to MaxBackoff, and the first success snaps back
// to the configured interval.
func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTimer(a.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-a.quit:
			return
		case <-t.C:
			ok, known := a.heartbeat()
			if !ok {
				a.mu.Lock()
				a.fails++
				a.mu.Unlock()
			} else {
				a.mu.Lock()
				a.fails = 0
				a.mu.Unlock()
				if !known {
					a.register()
				}
			}
			t.Reset(a.nextWait())
		}
	}
}

// nextWait returns the next heartbeat delay under the current failure
// streak: interval × 2^fails, jittered ±25%, capped at MaxBackoff.
func (a *Agent) nextWait() time.Duration {
	a.mu.Lock()
	fails := a.fails
	jitter := 0.75 + 0.5*a.rng.Float64()
	a.mu.Unlock()
	d := a.cfg.HeartbeatInterval
	for i := 0; i < fails && d < a.maxOff; i++ {
		d *= 2
	}
	if d > a.maxOff {
		d = a.maxOff
	}
	return time.Duration(float64(d) * jitter)
}

// register announces the worker; errors are swallowed (the next heartbeat
// retries).
func (a *Agent) register() {
	a.post("/fleet/register", agentHello{ID: a.cfg.WorkerID, URL: a.cfg.AdvertiseURL})
}

// heartbeat reports liveness and the placement epochs of every local
// fleet job. It returns (reachable, known): an unreachable controller
// backs the loop off; a reachable one that does not recognize this worker
// — or that restarted under a new instance ID — triggers re-registration.
// Fence commands in the reply are executed before returning.
func (a *Agent) heartbeat() (ok, known bool) {
	beat := agentBeat{ID: a.cfg.WorkerID}
	if a.cfg.Sched != nil {
		beat.Jobs = a.cfg.Sched.EpochReport()
	}
	code, body, err := a.postRead("/fleet/heartbeat", beat)
	if err != nil {
		return false, true
	}
	if code == http.StatusNotFound {
		return true, false
	}
	var reply beatReply
	if jerr := json.Unmarshal(body, &reply); jerr == nil {
		if a.cfg.Sched != nil {
			for _, f := range reply.Fenced {
				a.cfg.Sched.Fence(f.ID, f.Epoch)
			}
		}
		if reply.Instance != "" {
			a.mu.Lock()
			changed := a.instance != "" && a.instance != reply.Instance
			a.instance = reply.Instance
			a.mu.Unlock()
			if changed {
				return true, false // controller restarted: refresh registration
			}
		}
	}
	return true, true
}

func (a *Agent) post(path string, v any) (int, error) {
	code, _, err := a.postRead(path, v)
	return code, err
}

func (a *Agent) postRead(path string, v any) (int, []byte, error) {
	if a.cfg.Faults.LinkBlocked(a.cfg.WorkerID, faults.ControllerNode) {
		return 0, nil, fmt.Errorf("service: link %s->controller partitioned", a.cfg.WorkerID)
	}
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := a.client.Post(a.cfg.ControllerURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, maxJobBody))
	return resp.StatusCode, data, nil
}
