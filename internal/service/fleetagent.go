package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// AgentConfig joins a worker daemon to a nestctl control plane.
type AgentConfig struct {
	// ControllerURL is the control plane's base URL (http://host:port).
	ControllerURL string
	// WorkerID identifies this worker fleet-wide; it must be stable across
	// heartbeats but need not survive restarts (a restarted worker simply
	// re-registers).
	WorkerID string
	// AdvertiseURL is the base URL the controller should reach this
	// worker's job API on — the public address, not the listen address.
	AdvertiseURL string
	// HeartbeatInterval is the period between heartbeats. Zero means 2s.
	// The controller declares a worker dead after missing several of
	// these, so it must be comfortably under the controller's liveness
	// deadline.
	HeartbeatInterval time.Duration
	// Client overrides the HTTP client (tests); nil uses a 5s-timeout
	// default.
	Client *http.Client
}

// Agent is the worker-side fleet membership client: it registers the
// worker with the controller and then heartbeats until stopped. A
// heartbeat the controller does not recognize (it restarted, or it
// already declared this worker dead) triggers re-registration, so
// membership self-heals after control-plane restarts and transient
// partitions. Registration and heartbeats are cheap control messages —
// job traffic never flows through the agent.
type Agent struct {
	cfg    AgentConfig
	client *http.Client

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// agentHello is the JSON body of POST /fleet/register; agentBeat of
// POST /fleet/heartbeat. The controller decodes the same shapes.
type agentHello struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

type agentBeat struct {
	ID string `json:"id"`
}

// StartAgent registers the worker and starts the heartbeat loop. The
// initial registration is attempted immediately and then retried from the
// heartbeat loop, so a worker that comes up before its controller joins
// the fleet as soon as the controller appears.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ControllerURL == "" || cfg.WorkerID == "" || cfg.AdvertiseURL == "" {
		return nil, fmt.Errorf("service: fleet agent needs controller, worker-id and advertise URLs")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	a := &Agent{
		cfg:    cfg,
		client: cfg.Client,
		quit:   make(chan struct{}),
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: 5 * time.Second}
	}
	a.register()
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// Stop halts heartbeats. The controller will notice the silence, declare
// the worker dead after its liveness deadline, and hand its jobs to
// survivors — Stop is exactly how the fleet chaos suite makes a worker
// "die".
func (a *Agent) Stop() {
	a.once.Do(func() { close(a.quit) })
	a.wg.Wait()
}

func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-a.quit:
			return
		case <-t.C:
			if !a.heartbeat() {
				a.register()
			}
		}
	}
}

// register announces the worker; errors are swallowed (the next heartbeat
// retries).
func (a *Agent) register() {
	a.post("/fleet/register", agentHello{ID: a.cfg.WorkerID, URL: a.cfg.AdvertiseURL})
}

// heartbeat reports liveness; false means the controller does not know
// this worker and a re-registration is due.
func (a *Agent) heartbeat() bool {
	code, err := a.post("/fleet/heartbeat", agentBeat{ID: a.cfg.WorkerID})
	if err != nil {
		return true // unreachable controller: nothing to re-register with
	}
	return code != http.StatusNotFound
}

func (a *Agent) post(path string, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := a.client.Post(a.cfg.ControllerURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}
