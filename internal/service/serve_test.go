package service

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nestdiff/internal/serve"
)

// TestServeGoldenSnapshotEquivalence is the golden test of the serving
// tier's zero-interference claim: a run hammered by concurrent snapshot
// readers for its whole duration produces bit-identical final fields and
// identical adaptation events to a run with no serving attached at all.
func TestServeGoldenSnapshotEquivalence(t *testing.T) {
	cfg := smallJob(60).withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	plain, err := newRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	served, err := newRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{ID: "golden", Cfg: cfg, state: StateRunning, pub: serve.NewPublisher(0)}
	served.pipe.SetSnapshotSink(&jobSink{j: j})
	cache := serve.NewCache(1 << 22)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := j.pub.Acquire(2 * time.Second)
				if err != nil {
					continue
				}
				f := snap.Vars["qcloud"]
				if _, err := serve.BuildResponse(cache, "golden", "qcloud", snap, f.Bounds()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for step := 0; step < cfg.Steps; step++ {
		if err := plain.step(); err != nil {
			t.Fatal(err)
		}
		if err := served.step(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	if served.pipe.StepCount() != plain.pipe.StepCount() {
		t.Fatalf("step counts diverged: %d vs %d", served.pipe.StepCount(), plain.pipe.StepCount())
	}
	want := materializeVars(plain.pipe)
	got := materializeVars(served.pipe)
	if len(want) != len(got) {
		t.Fatalf("var sets diverged: %d vs %d", len(want), len(got))
	}
	for name, wf := range want {
		gf, ok := got[name]
		if !ok {
			t.Fatalf("served run lost var %q", name)
		}
		if wf.NX != gf.NX || wf.NY != gf.NY {
			t.Fatalf("var %q: %dx%d vs %dx%d", name, wf.NX, wf.NY, gf.NX, gf.NY)
		}
		for i := range wf.Data {
			if math.Float64bits(wf.Data[i]) != math.Float64bits(gf.Data[i]) {
				t.Fatalf("var %q cell %d: %v vs %v — serving perturbed the simulation",
					name, i, wf.Data[i], gf.Data[i])
			}
		}
	}
	if !reflect.DeepEqual(plain.pipe.Events(), served.pipe.Events()) {
		t.Fatal("adaptation event streams diverged between served and plain runs")
	}
}

// TestServeReadFieldRunningJob reads the field of a live job through the
// scheduler API and checks the envelope against the job's geometry.
func TestServeReadFieldRunningJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })

	body, err := s.ReadField(snap.ID, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := serve.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.GridNX != cfg.NX || resp.GridNY != cfg.NY {
		t.Fatalf("grid %dx%d, want %dx%d", resp.GridNX, resp.GridNY, cfg.NX, cfg.NY)
	}
	if resp.Field.NX != cfg.NX || resp.Field.NY != cfg.NY {
		t.Fatalf("full-domain field %dx%d", resp.Field.NX, resp.Field.NY)
	}
	if resp.Step < 1 {
		t.Fatalf("snapshot step %d", resp.Step)
	}
	// A rect re-read of the same snapshot step must hit the cache.
	before := s.TileCache().Stats()
	if _, err := s.ReadField(snap.ID, "qcloud", "0,0,64,64", strconv.Itoa(resp.Step)); err != nil {
		// The running job may have stepped past resp.Step; only a stale-step
		// rejection is acceptable here.
		if !strings.Contains(err.Error(), "latest") {
			t.Fatal(err)
		}
	} else if after := s.TileCache().Stats(); after.Hits <= before.Hits {
		t.Fatalf("rect re-read hit nothing: %+v -> %+v", before, after)
	}
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServeSnapshotResizeInteraction drives a live resize under readers:
// the pre-resize snapshot stays readable, the post-resize read carries a
// bumped epoch, and the cache refills rather than serving stale-epoch
// tiles.
func TestServeSnapshotResizeInteraction(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })

	pre, err := s.ReadField(snap.ID, "qcloud", "", "")
	if err != nil {
		t.Fatal(err)
	}
	preResp, err := serve.DecodeResponse(pre)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent readers keep hammering the field across the resize; none
	// may ever see an error other than a transient stale-step/no-snapshot.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := s.ReadField(snap.ID, "qcloud", "", "")
				if err != nil {
					continue
				}
				if _, err := serve.DecodeResponse(body); err != nil {
					t.Errorf("mid-resize response corrupt: %v", err)
					return
				}
			}
		}()
	}

	if err := s.ResizeJob(snap.ID, 128); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "resize applied", func(sn Snapshot) bool { return sn.Cores == 128 })
	post, err := s.ReadField(snap.ID, "qcloud", "", "")
	close(stop)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	postResp, err := serve.DecodeResponse(post)
	if err != nil {
		t.Fatal(err)
	}
	if postResp.Epoch <= preResp.Epoch {
		t.Fatalf("post-resize epoch %d, want > pre-resize epoch %d", postResp.Epoch, preResp.Epoch)
	}
	if postResp.GridNX != cfg.NX || postResp.GridNY != cfg.NY {
		t.Fatalf("post-resize grid %dx%d", postResp.GridNX, postResp.GridNY)
	}
	// The pre-resize response we hold is still a complete, decodable
	// snapshot of the old epoch.
	if again, err := serve.DecodeResponse(pre); err != nil || again.Epoch != preResp.Epoch {
		t.Fatalf("pre-resize response no longer readable: %v", err)
	}
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServeFreshCheckpointExport exports a running job's checkpoint: the
// export must return a freshly cut boundary checkpoint promptly, and the
// step loop must keep advancing — the export never stalls it.
func TestServeFreshCheckpointExport(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := smallJob(5000)
	cfg.StepDelayMS = 5
	cfg.AutoCheckpointSteps = -1 // no periodic checkpoints: export demand is the only cut
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })

	start := time.Now()
	env, err := s.ExportCheckpoint(snap.ID)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > exportFreshWait+2*time.Second {
		t.Fatalf("export took %s", elapsed)
	}
	_, _, state, err := decodeJobCheckpoint(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 {
		t.Fatal("running-job export shipped no pipeline state (fresh boundary checkpoint was never cut)")
	}
	// The job keeps stepping after the export.
	at := waitFor(t, s, snap.ID, "progress after export", func(sn Snapshot) bool { return sn.Step > 0 }).Step
	waitFor(t, s, snap.ID, "further progress", func(sn Snapshot) bool { return sn.Step > at })
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServeFieldHTTPErrors exercises the field endpoint's edge cases over
// real HTTP: bad rects and vars are 400s, unknown jobs and unpublishable
// steps are 404s.
func TestServeFieldHTTPErrors(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })

	get := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	base := srv.URL + "/jobs/"
	if code := get(base + snap.ID + "/field"); code != http.StatusOK {
		t.Fatalf("plain field read: %d", code)
	}
	for _, bad := range []struct {
		url  string
		want int
	}{
		{base + "nope/field", http.StatusNotFound},
		{base + snap.ID + "/field?rect=9999,0,10,10", http.StatusBadRequest}, // out of bounds
		{base + snap.ID + "/field?rect=0,0,0,10", http.StatusBadRequest},     // empty rect
		{base + snap.ID + "/field?rect=0,0,10", http.StatusBadRequest},       // malformed
		{base + snap.ID + "/field?var=nope", http.StatusBadRequest},
		{base + snap.ID + "/field?step=999999", http.StatusNotFound}, // never published
	} {
		if code := get(bad.url); code != bad.want {
			t.Fatalf("GET %s: %d, want %d", bad.url, code, bad.want)
		}
	}
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// readSSEIDs reads n SSE frames off a live stream and returns their ids.
func readSSEIDs(t *testing.T, body *bufio.Reader, n int) []int64 {
	t.Helper()
	var ids []int64
	var haveID bool
	var cur int64
	for len(ids) < n {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d frames: %v", len(ids), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id, perr := strconv.ParseInt(line[4:], 10, 64)
			if perr != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur, haveID = id, true
		case line == "" && haveID:
			ids = append(ids, cur)
			haveID = false
		}
	}
	return ids
}

// TestServeSSEOverHTTPAPI streams a traced job's events end-to-end over
// the JSON API's /events endpoint, including a drop-and-resume without
// duplicates or skips, and checks untraced jobs reject the upgrade.
func TestServeSSEOverHTTPAPI(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	cfg.Trace = true
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := func(ctx context.Context, lastID string) (*http.Response, *bufio.Reader) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/jobs/"+snap.ID+"/events", nil)
		req.Header.Set("Accept", "text/event-stream")
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("SSE connect: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		return resp, bufio.NewReader(resp.Body)
	}

	ctx1, cancel1 := context.WithTimeout(context.Background(), 60*time.Second)
	resp1, body1 := stream(ctx1, "")
	ids := readSSEIDs(t, body1, 5)
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not strictly increasing: %v", ids)
		}
	}
	last := ids[len(ids)-1]
	resp1.Body.Close()
	cancel1()

	// Resume exactly after the last seen id: no duplicates, no skips.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	resp2, body2 := stream(ctx2, fmt.Sprint(last))
	defer resp2.Body.Close()
	resumed := readSSEIDs(t, body2, 3)
	want := last + 1
	for _, id := range resumed {
		if id != want {
			t.Fatalf("resumed id %d, want %d (no dup, no skip)", id, want)
		}
		want++
	}

	// An untraced job has no ring to stream: the upgrade is a 400.
	plain, err := s.Submit(smallJob(40))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", srv.URL+"/jobs/"+plain.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("untraced SSE upgrade: %d, want 400", resp3.StatusCode)
	}
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServeTileCacheMetricsExposed checks the four tile-cache series
// appear on /metrics after a field read.
func TestServeTileCacheMetricsExposed(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })
	if _, err := s.ReadField(snap.ID, "", "", ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, name := range []string{
		"nestserved_tile_cache_hits_total",
		"nestserved_tile_cache_misses_total",
		"nestserved_tile_cache_evictions_total",
		"nestserved_tile_cache_bytes_total",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	ts := s.TileCache().Stats()
	if ts.Misses == 0 || ts.Bytes == 0 {
		t.Fatalf("tile cache never filled: %+v", ts)
	}
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStepLatencyUnderReadLoad measures step latency of a live run
// with zero readers and with 8 paced readers (~800 reads/s) hammering the
// snapshot + tile path — the interference number of BENCH_serve.json.
func BenchmarkStepLatencyUnderReadLoad(b *testing.B) {
	for _, readers := range []int{0, 8} {
		b.Run(fmt.Sprintf("readers-%d", readers), func(b *testing.B) {
			cfg := smallJob(1 << 30).withDefaults()
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
			r, err := newRun(cfg)
			if err != nil {
				b.Fatal(err)
			}
			j := &Job{ID: "bench", Cfg: cfg, state: StateRunning, pub: serve.NewPublisher(0)}
			r.pipe.SetSnapshotSink(&jobSink{j: j})
			cache := serve.NewCache(64 << 20)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						snap, err := j.pub.Acquire(100 * time.Millisecond)
						if err == nil {
							f := snap.Vars["qcloud"]
							if _, berr := serve.BuildResponse(cache, "bench", "qcloud", snap, f.Bounds()); berr != nil {
								b.Error(berr)
								return
							}
						}
						time.Sleep(10 * time.Millisecond)
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
