package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestQueueFullSheds429WithRetryAfter: the worker's admission path — a
// full submit queue answers 429 with a Retry-After hint instead of a
// generic error, so fleet controllers and clients can back off instead of
// hammering.
func TestQueueFullSheds429WithRetryAfter(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1})
	defer s.Kill() // Shutdown would wait out the slow blockers
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	slow := smallJob(5000)
	slow.StepDelayMS = 2
	submit := func() *http.Response {
		body, err := json.Marshal(slow)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// One job occupies the single worker slot, one fills the queue; the
	// next submission must shed. The loop tolerates the race where the
	// first job hasn't been dequeued yet.
	sawShed := false
	for i := 0; i < 8 && !sawShed; i++ {
		resp := submit()
		switch resp.StatusCode {
		case http.StatusCreated:
		case http.StatusTooManyRequests:
			sawShed = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After")
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body["error"] == "" {
				t.Fatal("429 without a JSON error body")
			}
		default:
			t.Fatalf("submit %d = %d, want 201 or 429", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !sawShed {
		t.Fatal("1-slot, 1-queue worker never shed a submission")
	}
	if s.Metrics().QueueFullRejections() == 0 {
		t.Fatal("queue-full rejection not counted")
	}

	// The direct API surfaces the same condition as ErrQueueFull.
	var lastErr error
	for i := 0; i < 8; i++ {
		if _, lastErr = s.Submit(slow); errors.Is(lastErr, ErrQueueFull) {
			break
		}
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("direct submit error = %v, want ErrQueueFull", lastErr)
	}
}

// TestSchedulerRecoversCheckpointsAtStartup: a scheduler pointed at a
// checkpoint dir left behind by a dead predecessor re-registers every
// persisted job as paused — resumable exactly where the predecessor last
// checkpointed — and counts (without importing) corrupt envelopes.
func TestSchedulerRecoversCheckpointsAtStartup(t *testing.T) {
	const steps = 60
	cfg := chaosJob(steps)
	cfg.StepDelayMS = 1 // slow enough to die mid-run
	refSnap, refEvents := runFaultFree(t, cfg)

	dir := t.TempDir()
	old := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	snap, err := old.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, old, snap.ID, "first persisted checkpoint", func(sn Snapshot) bool {
		// Persistence is asynchronous: wait for the file itself, not just
		// the in-memory checkpoint cut.
		_, err := os.Stat(filepath.Join(dir, snap.ID+".ckpt"))
		return sn.Step >= 10 && err == nil
	})
	old.Kill() // hard death: no park, no cleanup — only the disk survives

	// A corrupt envelope sits alongside the good one.
	if err := os.WriteFile(filepath.Join(dir, "garbage.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	defer s.Shutdown(context.Background())
	if got := s.Metrics().CheckpointsRecovered(); got != 1 {
		t.Fatalf("checkpoints recovered = %d, want 1", got)
	}
	if got := s.Metrics().CheckpointsCorrupt(); got != 1 {
		t.Fatalf("corrupt checkpoints = %d, want 1", got)
	}
	if _, err := s.Get("garbage"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt envelope registered a job: %v", err)
	}

	rec, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StatePaused || !rec.HasCheckpoint {
		t.Fatalf("recovered job = %+v, want paused with a checkpoint", rec)
	}
	if err := s.Resume(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Step != steps {
		t.Fatalf("recovered run finished %+v", final)
	}
	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("recovered nest set diverged:\nrecovered  %+v\nfault-free %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("recovered trace diverged (%d vs %d events)", len(events), len(refEvents))
	}
}

// TestCheckpointExportImportRoundTrip moves a half-finished job between
// two workers through the HTTP handoff surface: export the envelope from
// A, import it into B, resume on B, and the completed run must match a
// never-migrated one bit for bit.
func TestCheckpointExportImportRoundTrip(t *testing.T) {
	const steps = 60
	cfg := chaosJob(steps)
	cfg.StepDelayMS = 1
	refSnap, refEvents := runFaultFree(t, cfg)

	a := NewScheduler(SchedulerConfig{Workers: 1})
	defer a.Shutdown(context.Background())
	srvA := httptest.NewServer(NewHandler(a))
	defer srvA.Close()
	b := NewScheduler(SchedulerConfig{Workers: 1})
	defer b.Shutdown(context.Background())
	srvB := httptest.NewServer(NewHandler(b))
	defer srvB.Close()

	snap, err := a.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, a, snap.ID, "mid-run", func(sn Snapshot) bool { return sn.Step >= 10 })
	if err := a.Pause(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, a, snap.ID, "paused", func(sn Snapshot) bool { return sn.State == StatePaused })

	resp, err := http.Get(srvA.URL + "/jobs/" + snap.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	env, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d, %v", resp.StatusCode, err)
	}

	// The envelope is self-describing: config and pipeline state together.
	gotCfg, _, state, err := decodeJobCheckpoint(env)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg.Steps != steps || len(state) == 0 {
		t.Fatalf("decoded envelope: steps %d, state %d bytes", gotCfg.Steps, len(state))
	}

	iresp, err := http.Post(srvB.URL+"/jobs/"+snap.ID+"/import", "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	imported := func() Snapshot {
		defer iresp.Body.Close()
		var sn Snapshot
		if err := json.NewDecoder(iresp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
		return sn
	}()
	if iresp.StatusCode != http.StatusCreated || imported.State != StatePaused {
		t.Fatalf("import = %d, snapshot %+v", iresp.StatusCode, imported)
	}
	if b.Metrics().JobsImported() != 1 {
		t.Fatal("import not counted")
	}

	// A second import of the same ID conflicts rather than clobbering.
	dresp, err := http.Post(srvB.URL+"/jobs/"+snap.ID+"/import", "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate import = %d, want 409", dresp.StatusCode)
	}

	// A truncated envelope is rejected before it reaches the scheduler.
	tresp, err := http.Post(srvB.URL+"/jobs/other/import", "application/octet-stream", bytes.NewReader(env[:len(env)/2]))
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated import = %d, want 400", tresp.StatusCode)
	}

	rresp, err := http.Post(srvB.URL+"/jobs/"+snap.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resume after import = %d", rresp.StatusCode)
	}
	final := waitFor(t, b, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Step != steps {
		t.Fatalf("migrated run finished %+v", final)
	}
	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("migrated nest set diverged:\nmigrated   %+v\nfault-free %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := b.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("migrated trace diverged (%d vs %d events)", len(events), len(refEvents))
	}
}

// TestSchedulerResumeFromQueueNoDoubleRun covers the stale-queue-entry
// race: pausing a job that is already sitting in the queue channel leaves
// its entry behind, and resuming enqueues it again. The worker must treat
// the stale entry as a no-op — the job runs exactly once, and a second
// resume while queued is rejected as a bad transition.
func TestSchedulerResumeFromQueueNoDoubleRun(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	slow := smallJob(5000)
	slow.StepDelayMS = 2
	blocker, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, blocker.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning })

	const steps = 10
	queued, err := s.Submit(smallJob(steps))
	if err != nil {
		t.Fatal(err)
	}
	// Each cycle strands one more stale entry in the channel.
	for cycle := 0; cycle < 2; cycle++ {
		if err := s.Pause(queued.ID); err != nil {
			t.Fatalf("pause cycle %d: %v", cycle, err)
		}
		if err := s.Resume(queued.ID); err != nil {
			t.Fatalf("resume cycle %d: %v", cycle, err)
		}
		if err := s.Resume(queued.ID); !errors.Is(err, ErrBadTransition) {
			t.Fatalf("double resume cycle %d: %v, want ErrBadTransition", cycle, err)
		}
	}

	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, queued.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Step != steps || final.Retries != 0 {
		t.Fatalf("resumed job finished %+v", final)
	}

	// Let the worker chew through the stale entries; the job must stay
	// done and no further steps may execute.
	doneSteps := s.Metrics().StepsExecuted()
	time.Sleep(50 * time.Millisecond)
	again, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || again.Step != steps {
		t.Fatalf("stale queue entry re-ran the job: %+v", again)
	}
	if got := s.Metrics().StepsExecuted(); got != doneSteps {
		t.Fatalf("steps kept executing after completion: %d -> %d", doneSteps, got)
	}
	if final.Events != steps/5 {
		t.Fatalf("events = %d, want %d", final.Events, steps/5)
	}
}
