package service

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkSchedulerThroughput measures end-to-end job throughput — submit
// through terminal state — at several worker-pool sizes. Each op is one
// 20-step cells-scenario job on a 256-core torus; ReportMetric adds
// steps/sec so pool scaling is visible in simulation work, not just job
// bookkeeping. Baseline figures live in BENCH_service.json.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchScheduler(b, workers, smallJob(20))
		})
	}
	// The traced variant measures the full tracing cost a job opts into
	// (ring buffer + streaming histograms, no ledger); compare against
	// workers=1 for the tracer-on/off throughput delta in BENCH_obs.json.
	b.Run("workers=1-traced", func(b *testing.B) {
		cfg := smallJob(20)
		cfg.Trace = true
		benchScheduler(b, 1, cfg)
	})
}

func benchScheduler(b *testing.B, workers int, cfg JobConfig) {
	s := NewScheduler(SchedulerConfig{Workers: workers, QueueDepth: b.N + 1})
	defer s.Shutdown(context.Background())
	b.ResetTimer()

	ids := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		snap, err := s.Submit(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		for {
			snap, err := s.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			if snap.State.Terminal() {
				if snap.State != StateDone {
					b.Fatalf("job %s finished %s (error %q)", id, snap.State, snap.Error)
				}
				break
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	b.StopTimer()

	steps := float64(s.Metrics().StepsExecuted())
	b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/sec")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}
