package service

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/faults"
)

// chaosJob is the standard fault-drill workload: a cells-scenario job
// with retries and frequent auto-checkpoints, so an injected failure
// around step 35 rolls back at most 10 steps.
func chaosJob(steps int) JobConfig {
	cfg := smallJob(steps)
	cfg.MaxRetries = 3
	cfg.RetryBackoffMS = 5
	cfg.AutoCheckpointSteps = 10
	return cfg
}

// runFaultFree executes cfg without any fault plan and returns its final
// snapshot and event trace — the ground truth a chaos run must match.
func runFaultFree(t *testing.T, cfg JobConfig) (Snapshot, []core.AdaptationEvent) {
	t.Helper()
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg.Faults = nil
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("fault-free run finished %s (error %q)", final.State, final.Error)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final, events
}

// noLeakedGoroutines polls until the goroutine count returns to within
// slack of the baseline, dumping all stacks on timeout. Polling (rather
// than a single check) tolerates runtime-internal goroutines that exit
// asynchronously.
func noLeakedGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestChaosCrashRetryMatchesFaultFreeRun is the core resilience claim: a
// job whose mpi rank crashes mid-run, is rolled back to its last good
// auto-checkpoint and retried, must end in the same final state — same
// nest set, same adaptation-event trace — as a run that never crashed.
func TestChaosCrashRetryMatchesFaultFreeRun(t *testing.T) {
	const steps = 60
	refSnap, refEvents := runFaultFree(t, chaosJob(steps))

	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := chaosJob(steps)
	// Crash any rank at step 35: past three auto-checkpoints (10, 20, 30),
	// so the retry resumes from step 30 and re-executes five steps.
	cfg.Faults = faults.NewPlan(1).CrashRank(35, faults.Wildcard)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("chaos run finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (one injected crash)", final.Retries)
	}
	if got := s.Metrics().JobRetries(); got != 1 {
		t.Fatalf("job_retries counter = %d, want 1", got)
	}
	if n := len(cfg.Faults.Injections()); n != 1 {
		t.Fatalf("plan recorded %d injections, want 1", n)
	}

	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("final nest sets diverged:\nchaos      %+v\nfault-free %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged: chaos %d events, fault-free %d events\nchaos      %+v\nfault-free %+v",
			len(events), len(refEvents), events, refEvents)
	}
	if final.ExecTime != refSnap.ExecTime || final.RedistTime != refSnap.RedistTime {
		t.Fatalf("cumulative costs diverged: exec %g vs %g, redist %g vs %g",
			final.ExecTime, refSnap.ExecTime, final.RedistTime, refSnap.RedistTime)
	}
}

// TestChaosCrashBeforeFirstCheckpointRestartsFromScratch: with no good
// checkpoint yet, the retry re-runs the job from the start — and still
// converges to the fault-free trace.
func TestChaosCrashBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	const steps = 30
	refSnap, refEvents := runFaultFree(t, chaosJob(steps))

	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := chaosJob(steps)
	cfg.Faults = faults.NewPlan(2).CrashRank(5, faults.Wildcard)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("chaos run finished %s (error %q), want done", final.State, final.Error)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged after from-scratch retry")
	}
	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("final nest sets diverged after from-scratch retry")
	}
}

// TestChaosWorkerPanicRecovered: a panic inside a job's step (here
// injected directly on the worker goroutine) must not kill the worker.
// The job fails with the captured stack and the pool keeps serving.
func TestChaosWorkerPanicRecovered(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := smallJob(30) // MaxRetries 0: first failure is terminal
	cfg.Faults = faults.NewPlan(3).PanicStep(10)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFailed {
		t.Fatalf("panicking job finished %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "panicked") || !strings.Contains(final.Error, "goroutine") {
		t.Fatalf("failure error lacks panic + stack trace: %q", final.Error)
	}
	if got := s.Metrics().WorkerPanics(); got != 1 {
		t.Fatalf("worker_panics counter = %d, want 1", got)
	}

	// The single worker survived: a healthy job still completes.
	snap2, err := s.Submit(smallJob(10))
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitFor(t, s, snap2.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final2.State != StateDone {
		t.Fatalf("job after panic finished %s (error %q), want done", final2.State, final2.Error)
	}
}

// TestChaosPanicIsRetriedLikeAnyFailure: with retries configured, a
// recovered panic goes through the same retry machinery as a step error.
func TestChaosPanicIsRetriedLikeAnyFailure(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := chaosJob(30)
	cfg.Faults = faults.NewPlan(4).PanicStep(15)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("retried panic finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Fatalf("retries = %d, want 1", final.Retries)
	}
	if got := s.Metrics().WorkerPanics(); got != 1 {
		t.Fatalf("worker_panics counter = %d, want 1", got)
	}
}

// TestChaosCheckpointWriteFailureKeepsLastGood: an injected I/O error in
// an auto-checkpoint write is absorbed — the previous good checkpoint
// stays authoritative, the failure is counted, and the job completes.
func TestChaosCheckpointWriteFailureKeepsLastGood(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := chaosJob(45)                                  // auto-checkpoints at steps 10, 20, 30, 40
	cfg.Faults = faults.NewPlan(5).FailCheckpoint(2, 64) // tear the step-20 write
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	m := s.Metrics()
	if got := m.CheckpointFailures(); got != 1 {
		t.Fatalf("checkpoint_failures counter = %d, want 1", got)
	}
	if got := m.AutoCheckpoints(); got != 3 {
		t.Fatalf("auto_checkpoints counter = %d, want 3 (one of four writes torn)", got)
	}
}

// TestChaosDeadlineIsTerminal: a job over its deadline fails and is NOT
// retried, even with retry budget left.
func TestChaosDeadlineIsTerminal(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := chaosJob(10_000)
	cfg.StepDelayMS = 5
	cfg.DeadlineMS = 40
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFailed {
		t.Fatalf("overdue job finished %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline exceeded") {
		t.Fatalf("failure error %q does not mention the deadline", final.Error)
	}
	if final.Retries != 0 {
		t.Fatalf("deadline failure consumed %d retries, want 0", final.Retries)
	}
}

// TestChaosRetriesExhausted: a fault plan that panics on every step runs
// the job out of retries; the terminal state is failed with the last
// error, and the retry counters agree.
func TestChaosRetriesExhausted(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := chaosJob(30)
	cfg.MaxRetries = 2
	plan := faults.NewPlan(6)
	// One panic per attempt: the rule re-arms at a later step each time
	// because each attempt replays past the previous panic point.
	for step := 5; step <= 30; step += 5 {
		plan.PanicStep(step)
	}
	cfg.Faults = plan
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFailed {
		t.Fatalf("job finished %s, want failed after exhausting retries", final.State)
	}
	if final.Retries != 2 {
		t.Fatalf("retries = %d, want 2", final.Retries)
	}
	if got := s.Metrics().JobsFailed(); got != 1 {
		t.Fatalf("jobs_failed counter = %d, want 1", got)
	}
}

// TestChaosFleetReachesTerminalStatesWithoutLeaks is the suite's
// integration drill: a mixed fleet — healthy, crashing-then-retried,
// panicking without retries, cancelled mid-run, over-deadline — must all
// reach a terminal state, and the drained scheduler must leave no
// goroutines behind.
func TestChaosFleetReachesTerminalStatesWithoutLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewScheduler(SchedulerConfig{Workers: 3})

	healthy := smallJob(20)

	crashing := chaosJob(40)
	crashing.Faults = faults.NewPlan(10).CrashRank(15, faults.Wildcard)

	panicking := smallJob(20)
	panicking.Faults = faults.NewPlan(11).PanicStep(5)

	cancelled := smallJob(10_000)
	cancelled.StepDelayMS = 1

	overdue := smallJob(10_000)
	overdue.StepDelayMS = 5
	overdue.DeadlineMS = 40

	ids := make([]string, 0, 5)
	for _, cfg := range []JobConfig{healthy, crashing, panicking, cancelled, overdue} {
		snap, err := s.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	// Cancel the long-running job once it is actually executing.
	waitFor(t, s, ids[3], "running", func(sn Snapshot) bool { return sn.State == StateRunning })
	if err := s.Cancel(ids[3]); err != nil {
		t.Fatal(err)
	}

	want := []JobState{StateDone, StateDone, StateFailed, StateCancelled, StateFailed}
	for i, id := range ids {
		final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
		if final.State != want[i] {
			t.Fatalf("job %s finished %s (error %q), want %s", id, final.State, final.Error, want[i])
		}
	}
	counts := s.CountsByState()
	for _, st := range []JobState{StateQueued, StateRunning, StateRetrying, StatePaused} {
		if counts[st] != 0 {
			t.Fatalf("%d jobs stuck in %s after the fleet drained: %v", counts[st], st, counts)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	noLeakedGoroutines(t, baseline)
}

// TestChaosShutdownParksRetryingJob: a drain that arrives while a job is
// waiting out its retry backoff converts it to paused (checkpoint
// intact) instead of abandoning the timer goroutine.
func TestChaosShutdownParksRetryingJob(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewScheduler(SchedulerConfig{Workers: 1})

	cfg := chaosJob(40)
	cfg.RetryBackoffMS = 60_000 // park in retrying long enough to observe
	cfg.Faults = faults.NewPlan(12).CrashRank(15, faults.Wildcard)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "retrying", func(sn Snapshot) bool { return sn.State == StateRetrying })

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the retry backoff timer")
	}
	got, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StatePaused {
		t.Fatalf("retrying job drained to %s, want paused", got.State)
	}
	if !got.HasCheckpoint {
		t.Fatal("parked job lost its retry checkpoint")
	}
	noLeakedGoroutines(t, baseline)
}

// TestSchedulerStartShutdownNoGoroutineLeaks: repeated scheduler
// lifecycles — including one with an active cancelled job — return the
// process to its baseline goroutine count.
func TestSchedulerStartShutdownNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s := NewScheduler(SchedulerConfig{Workers: 4})
		cfg := smallJob(10_000)
		cfg.StepDelayMS = 1
		snap, err := s.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning })
		if err := s.Cancel(snap.ID); err != nil {
			t.Fatal(err)
		}
		waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	noLeakedGoroutines(t, baseline)
}

// TestChaosPersistedCheckpointSurvivesRetry: with a CheckpointDir, the
// on-disk mirror tracks the job across crash and retry, and is removed
// once the job completes.
func TestChaosPersistedCheckpointSurvivesRetry(t *testing.T) {
	dir := t.TempDir()
	s := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	defer s.Shutdown(context.Background())

	cfg := chaosJob(40)
	cfg.Faults = faults.NewPlan(13).CrashRank(25, faults.Wildcard)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The mirror must exist while the job is live past its first
	// auto-checkpoint.
	path := fmt.Sprintf("%s/%s.ckpt", dir, snap.ID)
	waitFor(t, s, snap.ID, "first checkpoint", func(sn Snapshot) bool { return sn.Step >= 10 })
	waitFor(t, s, snap.ID, "mirror on disk", func(sn Snapshot) bool {
		_, err := os.Stat(path)
		return err == nil || sn.State.Terminal()
	})
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Fatalf("retries = %d, want 1", final.Retries)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("terminal job left its checkpoint mirror on disk")
	}
}
