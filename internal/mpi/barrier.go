package mpi

import (
	"sync"
	"sync/atomic"
)

// barrier is a reusable n-party sense-reversing rendezvous. Arrival is a
// single atomic increment; the last arriver runs the optional hook (the
// collectives combine clocks and reduce values in it) and then releases
// every waiter through its private one-token channel. Compared to the
// two-phase mutex+cond barrier this replaces, there is no lock convoy on a
// shared mutex and no thundering-herd Broadcast: each generation costs one
// contended atomic plus n-1 buffered channel operations, and allocates
// nothing.
//
// Each member's call count doubles as its local sense. The token channels
// make the sense implicit — a member can only hold one unconsumed token,
// so generations cannot run into each other — while the count's parity
// (phase) tells single-rendezvous collectives which of two result slots
// the current generation owns.
type barrier struct {
	n       int
	arrived atomic.Int32
	chans   []chan struct{}
	senses  []counter
	once    sync.Once
	dead    atomic.Bool
}

// counter is a per-member call count on its own cache line: members bump
// their slot on every collective, and padding keeps the slots from false
// sharing.
type counter struct {
	n uint64
	_ [56]byte
}

func newBarrier(n int) *barrier {
	b := &barrier{
		n:      n,
		chans:  make([]chan struct{}, n),
		senses: make([]counter, n),
	}
	for i := range b.chans {
		b.chans[i] = make(chan struct{}, 1)
	}
	return b
}

// phase returns the parity of member me's next rendezvous. Collectives
// that publish a result across the rendezvous double-buffer it by this
// parity: a member may still be reading its slot while another member has
// entered the next generation, but never while anyone is two generations
// ahead (that would require this member to have passed a rendezvous in
// between).
func (b *barrier) phase(me int) int { return int(b.senses[me].n & 1) }

// await blocks until all n members arrive. hook runs exactly once per
// generation, in the last arriver, while every member is inside the
// rendezvous.
func (b *barrier) await(me int, hook func()) {
	if b.dead.Load() {
		panic(panicPoisoned)
	}
	b.senses[me].n++
	if int(b.arrived.Add(1)) == b.n {
		if hook != nil {
			hook()
		}
		// Reset before any token send: a released waiter may re-arrive
		// immediately and must observe a zeroed count.
		b.arrived.Store(0)
		for i := range b.chans {
			if i == me {
				continue
			}
			select {
			case b.chans[i] <- struct{}{}:
			default:
				// Full means poison already buffered a token for i (the
				// normal protocol never leaves one unconsumed), so i wakes
				// and panics without ours.
			}
		}
		return
	}
	// A plain receive, not a select over a separate poison channel: poison
	// buffers a token into every member channel, so a parked waiter always
	// wakes, and the dead re-check below turns a poison wake into a panic.
	<-b.chans[me]
	if b.dead.Load() {
		panic(panicPoisoned)
	}
}

// poison permanently breaks the barrier, waking every current and future
// waiter with panicPoisoned so a failed world unwinds instead of
// deadlocking. Members not yet parked are covered too: the token stays
// buffered until they park, and the entry dead-check catches members that
// arrive later still.
func (b *barrier) poison() {
	b.once.Do(func() {
		b.dead.Store(true)
		for i := range b.chans {
			select {
			case b.chans[i] <- struct{}{}:
			default:
			}
		}
	})
}
