package mpi

import (
	"strings"
	"testing"
	"time"

	"nestdiff/internal/faults"
	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

// pooledWorld builds a 12-rank torus world with contention and send
// overhead, so the equivalence runs exercise every cost-model term.
func pooledWorld(t testing.TB) *World {
	t.Helper()
	g := geom.NewGrid(4, 3)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(12), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(12, Config{
		Net:                   net,
		ContentionBytesPerSec: 1e9,
		SendOverhead:          2e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// collectiveTrace is one rank's observations over the equivalence
// schedule: its clock after every operation and every payload value it
// received, in order.
type collectiveTrace struct {
	clocks   []float64
	payloads []float64
}

// runCollectiveSchedule drives every collective plus point-to-point
// traffic through either the copying APIs (pooled=false) or the
// scratch/Into variants (pooled=true) and records per-rank traces. The
// schedule repeats three times so pooled buffers are observed after reuse,
// not just freshly grown.
func runCollectiveSchedule(t *testing.T, pooled bool) []collectiveTrace {
	t.Helper()
	w := pooledWorld(t)
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	n := w.Size()
	traces := make([]collectiveTrace, n)
	scratches := make([]Scratch, n)
	err = w.Run(func(r *Rank) {
		id := r.ID()
		tr := &traces[id]
		s := &scratches[id]
		observe := func(rows [][]float64) {
			tr.clocks = append(tr.clocks, r.Clock())
			for _, row := range rows {
				tr.payloads = append(tr.payloads, row...)
			}
		}
		var p2pBuf, bcastBuf, scatterBuf []float64
		for round := 0; round < 3; round++ {
			s.Reset()
			r.Compute(float64(id) * 3e-5)

			// Alltoallv: a shifting sparse exchange.
			send := allocRows(pooledScratch(pooled, s), n)
			to := (id + round + 1) % n
			if to != id {
				buf := copyBuf(pooledScratch(pooled, s), 40+id+round)
				for k := range buf {
					buf[k] = float64(id*100 + round*10 + k%7)
				}
				send[to] = buf
			}
			if pooled {
				observe(all.AlltoallvInto(r, send, s))
			} else {
				observe(all.Alltoallv(r, send))
			}

			// Gatherv at a rotating root.
			data := make([]float64, (id+round)%4)
			for k := range data {
				data[k] = float64(id*10 + k)
			}
			if pooled {
				observe(all.GathervInto(r, round%n, data, s))
			} else {
				observe(all.Gatherv(r, round%n, data))
			}

			// Bcast from a rotating root.
			var bc []float64
			if id == (round+5)%n {
				bc = make([]float64, 24)
				for k := range bc {
					bc[k] = float64(round*1000 + k)
				}
			}
			if pooled {
				bcastBuf = all.BcastInto(r, (round+5)%n, bc, bcastBuf)
				observe([][]float64{bcastBuf})
			} else {
				observe([][]float64{all.Bcast(r, (round+5)%n, bc)})
			}

			// Scatterv from a rotating root.
			var rows [][]float64
			if id == (round+2)%n {
				rows = make([][]float64, n)
				for i := range rows {
					rows[i] = make([]float64, i%3+1)
					for k := range rows[i] {
						rows[i][k] = float64(i*10 + k + round)
					}
				}
			}
			if pooled {
				scatterBuf = all.ScattervInto(r, (round+2)%n, rows, scatterBuf)
				observe([][]float64{scatterBuf})
			} else {
				observe([][]float64{all.Scatterv(r, (round+2)%n, rows)})
			}

			// Allgatherv.
			ag := make([]float64, (id*2+round)%5)
			for k := range ag {
				ag[k] = float64(id*100 + round*7 + k)
			}
			if pooled {
				observe(all.AllgathervInto(r, ag, s))
			} else {
				observe(all.Allgatherv(r, ag))
			}

			// Reductions and barrier (identical in both modes — included so
			// the surrounding clocks line up only if their timing matches).
			tr.payloads = append(tr.payloads,
				all.AllreduceMax(r, float64((id+round)%7)),
				all.AllreduceSum(r, float64(id+round)))
			all.Barrier(r)
			tr.clocks = append(tr.clocks, r.Clock())

			// Point-to-point ring shift.
			r.Send((id+1)%n, 64+round, []float64{float64(id), float64(round)})
			if pooled {
				p2pBuf = r.RecvInto((id+n-1)%n, 64+round, p2pBuf)
				observe([][]float64{p2pBuf})
			} else {
				observe([][]float64{r.Recv((id+n-1)%n, 64+round)})
			}
			all.Barrier(r)
			tr.clocks = append(tr.clocks, r.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// pooledScratch selects the scratch for send-side buffers: the rank's
// arena in pooled mode, fresh heap buffers otherwise.
func pooledScratch(pooled bool, s *Scratch) *Scratch {
	if pooled {
		return s
	}
	return nil
}

// copyBuf returns a full-length buffer of size c from the scratch (or the
// heap when s is nil).
func copyBuf(s *Scratch, c int) []float64 {
	if s != nil {
		return s.Buf(c)[:c]
	}
	return make([]float64, c)
}

// TestPooledCollectivesMatchCopying is the collective-equivalence golden
// test: the scratch/Into variants must produce bit-identical virtual
// clocks (the modelled Alltoallv/collective times) and bit-identical
// payloads on every rank, compared to the copying APIs.
func TestPooledCollectivesMatchCopying(t *testing.T) {
	copying := runCollectiveSchedule(t, false)
	pooled := runCollectiveSchedule(t, true)
	for id := range copying {
		a, b := copying[id], pooled[id]
		if len(a.clocks) != len(b.clocks) {
			t.Fatalf("rank %d: %d vs %d clock marks", id, len(a.clocks), len(b.clocks))
		}
		for i := range a.clocks {
			if a.clocks[i] != b.clocks[i] {
				t.Errorf("rank %d clock mark %d: copying %g, pooled %g", id, i, a.clocks[i], b.clocks[i])
			}
		}
		if len(a.payloads) != len(b.payloads) {
			t.Fatalf("rank %d: %d vs %d payload words", id, len(a.payloads), len(b.payloads))
		}
		for i := range a.payloads {
			if a.payloads[i] != b.payloads[i] {
				t.Errorf("rank %d payload word %d: copying %g, pooled %g", id, i, a.payloads[i], b.payloads[i])
			}
		}
	}
}

// TestRecvIntoHonorsInjectedDelay: the pooled receive path must apply a
// fault plan's injected transit delay to the receiver's virtual clock,
// exactly like Recv.
func TestRecvIntoHonorsInjectedDelay(t *testing.T) {
	plan := faults.NewPlan(1).DelayMessage(0, 1, 7, 1, 2.5)
	w, err := NewWorld(2, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var recvClock float64
	err = w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1.0)
			r.Send(1, 7, []float64{42})
		case 1:
			buf := make([]float64, 0, 4)
			got := r.RecvInto(0, 7, buf)
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("payload %v", got)
			}
			recvClock = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvClock < 3.5 {
		t.Fatalf("receiver clock %g, want >= 3.5 (1.0 compute + 2.5 injected delay)", recvClock)
	}
}

// TestRecvIntoTimesOutOnDrop: a dropped message must time out a pooled
// receive under the plan's receive timeout instead of blocking forever.
func TestRecvIntoTimesOutOnDrop(t *testing.T) {
	plan := faults.NewPlan(1).
		DropMessage(0, 1, 7, 1).
		WithRecvTimeout(100 * time.Millisecond)
	w, err := NewWorld(2, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, 7, []float64{1})
			case 1:
				r.RecvInto(0, 7, make([]float64, 0, 4)) // never arrives
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dropped message produced no error")
		}
		if !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("error %v, want a receive timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked on a dropped message")
	}
}

// TestSteadyStateZeroAlloc asserts the headline property of the pooled
// layer: once buffers are warm, collectives and point-to-point traffic on
// the scratch paths allocate nothing. The cost of World.Run itself
// (goroutine spawns) is measured separately and subtracted, and the K
// operations per Run amortize any residue.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	w := pooledWorld(t)
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	n := w.Size()
	scratches := make([]Scratch, n)
	recvBufs := make([][]float64, n)
	sendPayload := make([]float64, 64)

	const K = 16
	workload := func(r *Rank) {
		id := r.ID()
		s := &scratches[id]
		for k := 0; k < K; k++ {
			s.Reset()
			send := s.Rows(n)
			buf := s.Buf(len(sendPayload))
			send[(id+1)%n] = append(buf, sendPayload...)
			all.AlltoallvInto(r, send, s)
			all.AllreduceMax(r, float64(id))
			all.AllreduceSum(r, float64(k))
			all.Barrier(r)
			r.Send((id+1)%n, k, sendPayload)
			recvBufs[id] = r.RecvInto((id+n-1)%n, k, recvBufs[id])
		}
	}
	empty := func(r *Rank) {}

	run := func(fn func(r *Rank)) {
		if err := w.Run(fn); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every pool, arena, and staging buffer.
	for i := 0; i < 3; i++ {
		run(workload)
	}
	base := testing.AllocsPerRun(10, func() { run(empty) })
	loaded := testing.AllocsPerRun(10, func() { run(workload) })
	perOp := (loaded - base) / K
	// 12 ranks × (1 Alltoallv + 2 reductions + 1 barrier + 1 send/recv)
	// per op: anything above a stray fraction means a steady-state path
	// allocates.
	if perOp > 1 {
		t.Errorf("steady-state allocations: %.2f per collective round (base %.1f, loaded %.1f)",
			perOp, base, loaded)
	}
}
