package mpi

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

// goldenSchedule runs a fixed, deterministic mix of every collective on a
// 4x4 torus world with contention and send overhead enabled, recording
// rank 0's virtual clock after each stage. The recorded values pin the
// cost model: any change to the collectives' virtual-clock arithmetic
// breaks this test, which is the "bit-identical to the pre-change
// collectives" guarantee of the zero-copy communication layer.
func goldenSchedule(t testing.TB) []float64 {
	g := geom.NewGrid(4, 4)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(16), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(16, Config{
		Net:                   net,
		ContentionBytesPerSec: 2e9,
		SendOverhead:          1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.NewComm([]int{1, 4, 9, 14})
	if err != nil {
		t.Fatal(err)
	}

	var trace []float64
	mark := func(r *Rank) {
		if r.ID() == 0 {
			trace = append(trace, r.Clock())
		}
	}
	if err := w.Run(func(r *Rank) {
		id := r.ID()
		r.Compute(float64(id)*1e-4 + 1e-5)

		// Sparse personalized all-to-all.
		send := make([][]float64, 16)
		to := (id*3 + 1) % 16
		if to != id {
			buf := make([]float64, 64+id)
			for k := range buf {
				buf[k] = float64(id*1000 + k)
			}
			send[to] = buf
		}
		all.Alltoallv(r, send)
		mark(r)

		all.Barrier(r)
		mark(r)

		if got := all.AllreduceMax(r, float64(id%7)); got != 6 {
			panic(fmt.Sprintf("allreduce max %g", got))
		}
		mark(r)

		if got := all.AllreduceSum(r, float64(id)); got != 120 {
			panic(fmt.Sprintf("allreduce sum %g", got))
		}
		mark(r)

		data := make([]float64, id%5)
		for k := range data {
			data[k] = float64(id*10 + k)
		}
		all.Gatherv(r, 2, data)
		mark(r)

		var bc []float64
		if id == 3 {
			bc = make([]float64, 32)
			for k := range bc {
				bc[k] = float64(k)
			}
		}
		all.Bcast(r, 3, bc)
		mark(r)

		var rows [][]float64
		if id == 1 {
			rows = make([][]float64, 16)
			for i := range rows {
				rows[i] = make([]float64, i+1)
			}
		}
		all.Scatterv(r, 1, rows)
		mark(r)

		ag := make([]float64, (id*2)%6)
		for k := range ag {
			ag[k] = float64(id*100 + k)
		}
		all.Allgatherv(r, ag)
		mark(r)

		// Point-to-point ring shift with tags.
		r.Send((id+1)%16, 5, []float64{float64(id)})
		got := r.Recv((id+15)%16, 5)
		if len(got) != 1 || got[0] != float64((id+15)%16) {
			panic("ring payload wrong")
		}
		all.Barrier(r)
		mark(r)

		// Sub-communicator traffic from members only.
		if _, ok := sub.CommRank(id); ok {
			sub.AllreduceMax(r, float64(id))
			sub.Barrier(r)
		}
		all.Barrier(r)
		mark(r)
	}); err != nil {
		t.Fatal(err)
	}
	return trace
}

// goldenClocks are rank 0's clocks after each stage of goldenSchedule,
// captured from the two-phase mutex+cond implementation that predates the
// zero-copy communication layer (regenerate by running this test with
// MPI_GOLDEN_GEN=1 and pasting the output).
var goldenClocks = []float64{
	0.0015306445714285714,
	0.0015306445714285714,
	0.0015306445714285714,
	0.0015306445714285714,
	0.0015342645714285714,
	0.0015405902857142857,
	0.0015449302857142857,
	0.0015546931428571428,
	0.0015579617142857142,
	0.0015579617142857142,
}

func TestCollectiveClocksMatchGolden(t *testing.T) {
	trace := goldenSchedule(t)
	if os.Getenv("MPI_GOLDEN_GEN") != "" {
		for _, v := range trace {
			fmt.Printf("\t%s,\n", strconv.FormatFloat(v, 'g', 17, 64))
		}
		return
	}
	if len(trace) != len(goldenClocks) {
		t.Fatalf("trace has %d stages, golden has %d", len(trace), len(goldenClocks))
	}
	for i, v := range trace {
		if v != goldenClocks[i] {
			t.Errorf("stage %d clock %s, golden %s", i,
				strconv.FormatFloat(v, 'g', 17, 64),
				strconv.FormatFloat(goldenClocks[i], 'g', 17, 64))
		}
	}
}
