package mpi

import (
	"fmt"
	"sort"

	"nestdiff/internal/topology"
)

// Comm is a communicator over a subset of world ranks, analogous to an MPI
// communicator. All members must call each collective on the same *Comm
// instance, in the same order. Collective arguments and results are
// indexed by *communicator* rank (0..Size-1); the mapping to world ranks
// is fixed at creation (sorted ascending).
//
// Data collectives (Bcast, Gatherv, Scatterv, Alltoallv, Allgatherv) use
// two rendezvous: members publish buffers, the first rendezvous' hook
// prices the exchange, members copy their results out, and the second
// rendezvous guarantees every member finished copying before any sender
// may reuse its buffer. Barrier and the Allreduce reductions carry only a
// scalar, so their reduce and release are fused into a single rendezvous
// with a parity-double-buffered result slot.
type Comm struct {
	world *World
	ranks []int       // comm rank → world rank, ascending
	index map[int]int // world rank → comm rank
	bar   *barrier

	// Data-collective scratch, valid between the two rendezvous of one
	// collective call. clocks is written by each member (own slot only)
	// before the rendezvous and read only inside rendezvous hooks.
	rows   [][][]float64 // per comm rank: the rows it published
	flat   [][]float64   // per comm rank: single buffer (bcast/gather)
	clocks []float64
	sync   float64

	// msgs is hook-only scratch for the Alltoallv cost model. Hooks of
	// successive generations are serialized by the rendezvous
	// happens-before edges, so one buffer serves all of them.
	msgs []topology.Message

	// Fused reductions publish inputs into redVals (own slot, hook-only
	// readers) and read their result from redOut, double-buffered by
	// rendezvous parity: a member may still be reading its generation's
	// slot while another member has entered the next (opposite-parity)
	// collective, but never while anyone is two generations ahead.
	redVals []float64
	redOut  [2]redResult

	// Allgatherv scratch: member payload offsets into the concatenation
	// built once per call by the hook.
	gathered []float64
	offsets  []int
}

type redResult struct {
	sync float64
	val  float64
}

// NewComm builds a communicator over the given world ranks (duplicates are
// an error; order is normalized to ascending).
func (w *World) NewComm(ranks []int) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("mpi: empty communicator")
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	index := make(map[int]int, len(sorted))
	for i, r := range sorted {
		if r < 0 || r >= w.n {
			return nil, fmt.Errorf("mpi: rank %d outside world of %d", r, w.n)
		}
		if _, dup := index[r]; dup {
			return nil, fmt.Errorf("mpi: duplicate rank %d in communicator", r)
		}
		index[r] = i
	}
	c := &Comm{
		world:   w,
		ranks:   sorted,
		index:   index,
		bar:     newBarrier(len(sorted)),
		rows:    make([][][]float64, len(sorted)),
		flat:    make([][]float64, len(sorted)),
		clocks:  make([]float64, len(sorted)),
		redVals: make([]float64, len(sorted)),
		offsets: make([]int, len(sorted)+1),
	}
	w.register(c)
	return c, nil
}

// All returns a communicator spanning every world rank.
func (w *World) All() (*Comm, error) {
	ranks := make([]int, w.n)
	for i := range ranks {
		ranks[i] = i
	}
	return w.NewComm(ranks)
}

// Size returns the number of communicator members.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to its world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// CommRank translates a world rank to its comm rank, with ok=false for
// non-members.
func (c *Comm) CommRank(worldRank int) (int, bool) {
	i, ok := c.index[worldRank]
	return i, ok
}

// me returns the comm rank of r, panicking for non-members (calling a
// collective on a communicator one is not part of is a programming error).
func (c *Comm) me(r *Rank) int {
	i, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not in communicator", r.id))
	}
	return i
}

// allocRows hands out a result row slice from s, or the heap when s is
// nil (the copying-API wrappers).
func allocRows(s *Scratch, n int) [][]float64 {
	if s != nil {
		return s.Rows(n)
	}
	return make([][]float64, n)
}

// copyInto copies src into a buffer from s (or the heap when s is nil),
// preserving the copying API's empty→nil convention.
func copyInto(s *Scratch, src []float64) []float64 {
	if len(src) == 0 {
		return nil
	}
	if s != nil {
		return append(s.Buf(len(src)), src...)
	}
	return append([]float64(nil), src...)
}

// Barrier synchronizes the members and their clocks (all advance to the
// maximum). Single rendezvous: nothing outlives it but the synchronized
// clock, which is parity-buffered.
func (c *Comm) Barrier(r *Rank) {
	me := c.me(r)
	p := c.bar.phase(me)
	c.clocks[me] = r.clock
	c.bar.await(me, func() {
		c.redOut[p].sync = maxOf(c.clocks)
	})
	r.clock = c.redOut[p].sync
}

// AllreduceMax returns the maximum of v over all members, advancing clocks
// like a barrier.
func (c *Comm) AllreduceMax(r *Rank, v float64) float64 {
	me := c.me(r)
	p := c.bar.phase(me)
	c.clocks[me] = r.clock
	c.redVals[me] = v
	c.bar.await(me, func() {
		m := c.redVals[0]
		for _, b := range c.redVals[1:] {
			if b > m {
				m = b
			}
		}
		c.redOut[p] = redResult{sync: maxOf(c.clocks), val: m}
	})
	out := c.redOut[p]
	r.clock = out.sync
	return out.val
}

// AllreduceSum returns the sum of v over all members, advancing clocks
// like a barrier.
func (c *Comm) AllreduceSum(r *Rank, v float64) float64 {
	me := c.me(r)
	p := c.bar.phase(me)
	c.clocks[me] = r.clock
	c.redVals[me] = v
	c.bar.await(me, func() {
		s := 0.0
		for _, b := range c.redVals {
			s += b
		}
		c.redOut[p] = redResult{sync: maxOf(c.clocks), val: s}
	})
	out := c.redOut[p]
	r.clock = out.sync
	return out.val
}

// Bcast distributes root's buffer to every member; each member receives a
// fresh copy. Clocks advance to the synchronized maximum plus the modelled
// time of the slowest root→member message.
func (c *Comm) Bcast(r *Rank, root int, data []float64) []float64 {
	return c.BcastInto(r, root, data, nil)
}

// BcastInto is Bcast receiving into buf (reused from length zero, grown
// only if too small) so steady-state broadcasts allocate nothing.
func (c *Comm) BcastInto(r *Rank, root int, data []float64, buf []float64) []float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	if me == root {
		c.flat[root] = data
	}
	c.bar.await(me, func() {
		worst := 0.0
		from := c.ranks[root]
		bytes := 8 * len(c.flat[root])
		for _, to := range c.ranks {
			if t := c.world.pairTime(from, to, bytes); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	out := append(buf[:0], c.flat[root]...)
	r.clock = c.sync
	c.bar.await(me, func() { c.flat[root] = nil })
	return out
}

// Gatherv collects every member's buffer at root. Root receives a slice
// indexed by comm rank (fresh copies); other members receive nil. Clocks
// advance to the synchronized maximum plus the modelled time of the
// slowest member→root message.
func (c *Comm) Gatherv(r *Rank, root int, data []float64) [][]float64 {
	return c.GathervInto(r, root, data, nil)
}

// GathervInto is Gatherv drawing the root's result rows and payload copies
// from s (valid until s.Reset). A nil s falls back to fresh allocations.
func (c *Comm) GathervInto(r *Rank, root int, data []float64, s *Scratch) [][]float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = data
	c.bar.await(me, func() {
		worst := 0.0
		to := c.ranks[root]
		for i, from := range c.ranks {
			if t := c.world.pairTime(from, to, 8*len(c.flat[i])); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	var out [][]float64
	if me == root {
		out = allocRows(s, len(c.ranks))
		for i := range c.ranks {
			out[i] = copyInto(s, c.flat[i])
		}
	}
	r.clock = c.sync
	c.bar.await(me, func() {
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
	return out
}

// Alltoallv performs the personalized all-to-all exchange at the heart of
// nest redistribution (§IV): send[i] goes to comm rank i (nil or empty
// slices send nothing, matching the paper's zero-count participation of
// uninvolved ranks). The result is indexed by source comm rank, with fresh
// buffers. All member clocks advance by the modelled exchange time,
// including the world's contention term.
func (c *Comm) Alltoallv(r *Rank, send [][]float64) [][]float64 {
	return c.AlltoallvInto(r, send, nil)
}

// AlltoallvInto is Alltoallv drawing the receive rows and payload copies
// from s, the receive-side twin of building send rows from the same
// scratch. Everything handed out stays valid until s.Reset; the collective
// has returned on every member by the time any member's call returns, so
// resetting after the results are consumed is always safe. A nil s falls
// back to fresh allocations.
func (c *Comm) AlltoallvInto(r *Rank, send [][]float64, s *Scratch) [][]float64 {
	me := c.me(r)
	if len(send) != len(c.ranks) {
		panic(fmt.Sprintf("mpi: Alltoallv send has %d rows for %d members", len(send), len(c.ranks)))
	}
	c.clocks[me] = r.clock
	c.rows[me] = send
	c.bar.await(me, func() {
		msgs := c.msgs[:0]
		for i, rows := range c.rows {
			for j, payload := range rows {
				if len(payload) == 0 || i == j {
					continue
				}
				msgs = append(msgs, topology.Message{
					From:  c.ranks[i],
					To:    c.ranks[j],
					Bytes: 8 * len(payload),
				})
			}
		}
		c.msgs = msgs
		c.sync = maxOf(c.clocks) + c.world.alltoallvTime(msgs)
	})
	out := allocRows(s, len(c.ranks))
	for i := range c.ranks {
		if row := c.rows[i]; row != nil && len(row[me]) > 0 {
			out[i] = copyInto(s, row[me])
		}
	}
	r.clock = c.sync
	c.bar.await(me, func() {
		for i := range c.rows {
			c.rows[i] = nil
		}
	})
	return out
}

// Scatterv distributes root's per-member buffers: member i receives a
// fresh copy of send[i]. Only root's send argument is consulted; other
// members pass nil. Clocks advance to the synchronized maximum plus the
// slowest root→member message.
func (c *Comm) Scatterv(r *Rank, root int, send [][]float64) []float64 {
	return c.ScattervInto(r, root, send, nil)
}

// ScattervInto is Scatterv receiving into buf (reused from length zero,
// grown only if too small).
func (c *Comm) ScattervInto(r *Rank, root int, send [][]float64, buf []float64) []float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	if me == root {
		if len(send) != len(c.ranks) {
			panic(fmt.Sprintf("mpi: Scatterv send has %d rows for %d members", len(send), len(c.ranks)))
		}
		c.rows[root] = send
	}
	c.bar.await(me, func() {
		worst := 0.0
		from := c.ranks[root]
		for i, to := range c.ranks {
			if t := c.world.pairTime(from, to, 8*len(c.rows[root][i])); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	out := append(buf[:0], c.rows[root][me]...)
	r.clock = c.sync
	c.bar.await(me, func() { c.rows[root] = nil })
	return out
}

// Allgatherv collects every member's buffer at every member: the result is
// indexed by comm rank. Modelled as a gather to rank 0 followed by a
// broadcast of the concatenation. The concatenation is materialized
// exactly once per call (the old implementation copied every payload once
// per receiving member); the returned rows are read-only views into it,
// shared by all members. Callers that mutate their result use
// AllgathervInto for owned copies.
func (c *Comm) Allgatherv(r *Rank, data []float64) [][]float64 {
	me := c.allgatherRendezvous(r, data)
	out := make([][]float64, len(c.ranks))
	for i := range out {
		if lo, hi := c.offsets[i], c.offsets[i+1]; hi > lo {
			out[i] = c.gathered[lo:hi:hi]
		}
	}
	c.allgatherRelease(r, me)
	return out
}

// AllgathervInto is Allgatherv copying each member's payload into buffers
// from s (valid until s.Reset), for callers that need ownership of their
// result rows.
func (c *Comm) AllgathervInto(r *Rank, data []float64, s *Scratch) [][]float64 {
	me := c.allgatherRendezvous(r, data)
	out := allocRows(s, len(c.ranks))
	for i := range c.ranks {
		out[i] = copyInto(s, c.flat[i])
	}
	c.allgatherRelease(r, me)
	return out
}

func (c *Comm) allgatherRendezvous(r *Rank, data []float64) int {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = data
	c.bar.await(me, func() {
		// Gather phase: slowest member→0 message.
		worst := 0.0
		total := 0
		for i, from := range c.ranks {
			if t := c.world.pairTime(from, c.ranks[0], 8*len(c.flat[i])); t > worst {
				worst = t
			}
			total += len(c.flat[i])
		}
		// Broadcast phase: slowest 0→member message of the concatenation.
		bc := 0.0
		for _, to := range c.ranks {
			if t := c.world.pairTime(c.ranks[0], to, 8*total); t > bc {
				bc = t
			}
		}
		c.sync = maxOf(c.clocks) + worst + bc
		// Materialize the concatenation once for all members. This is the
		// call's only payload copy; the buffer is freshly allocated because
		// the copying API's views may outlive the collective.
		buf := make([]float64, 0, total)
		c.offsets[0] = 0
		for i := range c.ranks {
			buf = append(buf, c.flat[i]...)
			c.offsets[i+1] = len(buf)
		}
		c.gathered = buf
	})
	return me
}

func (c *Comm) allgatherRelease(r *Rank, me int) {
	r.clock = c.sync
	c.bar.await(me, func() {
		c.gathered = nil
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
