package mpi

import (
	"fmt"
	"sort"

	"nestdiff/internal/topology"
)

// Comm is a communicator over a subset of world ranks, analogous to an MPI
// communicator. All members must call each collective on the same *Comm
// instance, in the same order. Collective arguments and results are
// indexed by *communicator* rank (0..Size-1); the mapping to world ranks
// is fixed at creation (sorted ascending).
type Comm struct {
	world *World
	ranks []int       // comm rank → world rank, ascending
	index map[int]int // world rank → comm rank
	bar   *barrier

	// collective scratch, valid between the two barrier phases of one
	// collective call
	rows   [][][]float64 // per comm rank: the rows it published
	flat   [][]float64   // per comm rank: single buffer (bcast/gather)
	clocks []float64
	sync   float64
}

// NewComm builds a communicator over the given world ranks (duplicates are
// an error; order is normalized to ascending).
func (w *World) NewComm(ranks []int) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("mpi: empty communicator")
	}
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	index := make(map[int]int, len(sorted))
	for i, r := range sorted {
		if r < 0 || r >= w.n {
			return nil, fmt.Errorf("mpi: rank %d outside world of %d", r, w.n)
		}
		if _, dup := index[r]; dup {
			return nil, fmt.Errorf("mpi: duplicate rank %d in communicator", r)
		}
		index[r] = i
	}
	c := &Comm{
		world:  w,
		ranks:  sorted,
		index:  index,
		bar:    newBarrier(len(sorted)),
		rows:   make([][][]float64, len(sorted)),
		flat:   make([][]float64, len(sorted)),
		clocks: make([]float64, len(sorted)),
	}
	w.register(c)
	return c, nil
}

// All returns a communicator spanning every world rank.
func (w *World) All() (*Comm, error) {
	ranks := make([]int, w.n)
	for i := range ranks {
		ranks[i] = i
	}
	return w.NewComm(ranks)
}

// Size returns the number of communicator members.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to its world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// CommRank translates a world rank to its comm rank, with ok=false for
// non-members.
func (c *Comm) CommRank(worldRank int) (int, bool) {
	i, ok := c.index[worldRank]
	return i, ok
}

// me returns the comm rank of r, panicking for non-members (calling a
// collective on a communicator one is not part of is a programming error).
func (c *Comm) me(r *Rank) int {
	i, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not in communicator", r.id))
	}
	return i
}

// Barrier synchronizes the members and their clocks (all advance to the
// maximum).
func (c *Comm) Barrier(r *Rank) {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.bar.await(func() {
		c.sync = maxOf(c.clocks)
	})
	r.clock = c.sync
	c.bar.await(nil)
}

// Bcast distributes root's buffer to every member; each member receives a
// fresh copy. Clocks advance to the synchronized maximum plus the modelled
// time of the slowest root→member message.
func (c *Comm) Bcast(r *Rank, root int, data []float64) []float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	if me == root {
		c.flat[root] = data
	}
	c.bar.await(func() {
		worst := 0.0
		from := c.ranks[root]
		bytes := 8 * len(c.flat[root])
		for _, to := range c.ranks {
			if t := c.world.pairTime(from, to, bytes); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	out := append([]float64(nil), c.flat[root]...)
	r.clock = c.sync
	c.bar.await(func() { c.flat[root] = nil })
	return out
}

// Gatherv collects every member's buffer at root. Root receives a slice
// indexed by comm rank (fresh copies); other members receive nil. Clocks
// advance to the synchronized maximum plus the modelled time of the
// slowest member→root message.
func (c *Comm) Gatherv(r *Rank, root int, data []float64) [][]float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = data
	c.bar.await(func() {
		worst := 0.0
		to := c.ranks[root]
		for i, from := range c.ranks {
			if t := c.world.pairTime(from, to, 8*len(c.flat[i])); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	var out [][]float64
	if me == root {
		out = make([][]float64, len(c.ranks))
		for i := range c.ranks {
			out[i] = append([]float64(nil), c.flat[i]...)
		}
	}
	r.clock = c.sync
	c.bar.await(func() {
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
	return out
}

// Alltoallv performs the personalized all-to-all exchange at the heart of
// nest redistribution (§IV): send[i] goes to comm rank i (nil or empty
// slices send nothing, matching the paper's zero-count participation of
// uninvolved ranks). The result is indexed by source comm rank, with fresh
// buffers. All member clocks advance by the modelled exchange time,
// including the world's contention term.
func (c *Comm) Alltoallv(r *Rank, send [][]float64) [][]float64 {
	me := c.me(r)
	if len(send) != len(c.ranks) {
		panic(fmt.Sprintf("mpi: Alltoallv send has %d rows for %d members", len(send), len(c.ranks)))
	}
	c.clocks[me] = r.clock
	c.rows[me] = send
	c.bar.await(func() {
		var msgs []topology.Message
		for i, rows := range c.rows {
			for j, payload := range rows {
				if len(payload) == 0 || i == j {
					continue
				}
				msgs = append(msgs, topology.Message{
					From:  c.ranks[i],
					To:    c.ranks[j],
					Bytes: 8 * len(payload),
				})
			}
		}
		c.sync = maxOf(c.clocks) + c.world.alltoallvTime(msgs)
	})
	out := make([][]float64, len(c.ranks))
	for i := range c.ranks {
		if row := c.rows[i]; row != nil && len(row[me]) > 0 {
			out[i] = append([]float64(nil), row[me]...)
		}
	}
	r.clock = c.sync
	c.bar.await(func() {
		for i := range c.rows {
			c.rows[i] = nil
		}
	})
	return out
}

// AllreduceMax returns the maximum of v over all members, advancing clocks
// like a barrier.
func (c *Comm) AllreduceMax(r *Rank, v float64) float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = []float64{v}
	c.bar.await(func() {
		m := c.flat[0][0]
		for _, b := range c.flat[1:] {
			if b[0] > m {
				m = b[0]
			}
		}
		c.sync = maxOf(c.clocks)
		c.flat[0][0] = m
	})
	result := c.flat[0][0]
	r.clock = c.sync
	c.bar.await(func() {
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
	return result
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Scatterv distributes root's per-member buffers: member i receives a
// fresh copy of send[i]. Only root's send argument is consulted; other
// members pass nil. Clocks advance to the synchronized maximum plus the
// slowest root→member message.
func (c *Comm) Scatterv(r *Rank, root int, send [][]float64) []float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	if me == root {
		if len(send) != len(c.ranks) {
			panic(fmt.Sprintf("mpi: Scatterv send has %d rows for %d members", len(send), len(c.ranks)))
		}
		c.rows[root] = send
	}
	c.bar.await(func() {
		worst := 0.0
		from := c.ranks[root]
		for i, to := range c.ranks {
			if t := c.world.pairTime(from, to, 8*len(c.rows[root][i])); t > worst {
				worst = t
			}
		}
		c.sync = maxOf(c.clocks) + worst
	})
	out := append([]float64(nil), c.rows[root][me]...)
	r.clock = c.sync
	c.bar.await(func() { c.rows[root] = nil })
	return out
}

// Allgatherv collects every member's buffer at every member: the result
// is indexed by comm rank, with fresh copies. Modelled as a gather to
// rank 0 followed by a broadcast of the concatenation.
func (c *Comm) Allgatherv(r *Rank, data []float64) [][]float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = data
	c.bar.await(func() {
		// Gather phase: slowest member→0 message.
		worst := 0.0
		total := 0
		for i, from := range c.ranks {
			if t := c.world.pairTime(from, c.ranks[0], 8*len(c.flat[i])); t > worst {
				worst = t
			}
			total += len(c.flat[i])
		}
		// Broadcast phase: slowest 0→member message of the concatenation.
		bc := 0.0
		for _, to := range c.ranks {
			if t := c.world.pairTime(c.ranks[0], to, 8*total); t > bc {
				bc = t
			}
		}
		c.sync = maxOf(c.clocks) + worst + bc
	})
	out := make([][]float64, len(c.ranks))
	for i := range c.ranks {
		out[i] = append([]float64(nil), c.flat[i]...)
	}
	r.clock = c.sync
	c.bar.await(func() {
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
	return out
}

// AllreduceSum returns the sum of v over all members, advancing clocks
// like a barrier.
func (c *Comm) AllreduceSum(r *Rank, v float64) float64 {
	me := c.me(r)
	c.clocks[me] = r.clock
	c.flat[me] = []float64{v}
	c.bar.await(func() {
		s := 0.0
		for _, b := range c.flat {
			s += b[0]
		}
		c.sync = maxOf(c.clocks)
		c.flat[0][0] = s
	})
	result := c.flat[0][0]
	r.clock = c.sync
	c.bar.await(func() {
		for i := range c.flat {
			c.flat[i] = nil
		}
	})
	return result
}
