package mpi

import (
	"fmt"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func benchWorld(b *testing.B, n int) *World {
	b.Helper()
	px, py := geom.NearSquareFactors(n)
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(n), topology.DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(n, Config{Net: net})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			w := benchWorld(b, n)
			all, err := w.All()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Run(func(r *Rank) {
					send := make([][]float64, n)
					send[(r.ID()+n/2)%n] = make([]float64, 256)
					all.Alltoallv(r, send)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlltoallvSteady amortizes World.Run's goroutine-spawn cost over
// 16 back-to-back exchanges, so it measures the collective itself (barrier
// synchronization + copy costs) rather than rank startup.
func BenchmarkAlltoallvSteady(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			w := benchWorld(b, n)
			all, err := w.All()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Run(func(r *Rank) {
					send := make([][]float64, n)
					send[(r.ID()+n/2)%n] = make([]float64, 256)
					for k := 0; k < 16; k++ {
						all.Alltoallv(r, send)
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlltoallvIntoSteady is the pooled counterpart of
// BenchmarkAlltoallvSteady: send rows and receive rows both come from a
// per-rank Scratch arena, so the steady state runs without heap allocation.
func BenchmarkAlltoallvIntoSteady(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			w := benchWorld(b, n)
			all, err := w.All()
			if err != nil {
				b.Fatal(err)
			}
			scratch := make([]Scratch, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Run(func(r *Rank) {
					s := &scratch[r.ID()]
					for k := 0; k < 16; k++ {
						s.Reset()
						send := s.Rows(n)
						send[(r.ID()+n/2)%n] = s.Buf(256)[:256]
						all.AlltoallvInto(r, send, s)
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllreduce exercises the reduction rendezvous (10 max + 10 sum
// reductions per Run).
func BenchmarkAllreduce(b *testing.B) {
	w := benchWorld(b, 64)
	all, err := w.All()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			for k := 0; k < 10; k++ {
				all.AllreduceMax(r, float64(r.ID()+k))
				all.AllreduceSum(r, float64(k))
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrier(b *testing.B) {
	w := benchWorld(b, 64)
	all, err := w.All()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			for k := 0; k < 10; k++ {
				all.Barrier(r)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	w := benchWorld(b, 16)
	payload := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			const rounds = 16
			switch r.ID() {
			case 0:
				for k := 0; k < rounds; k++ {
					r.Send(1, k, payload)
					r.Recv(1, k)
				}
			case 1:
				for k := 0; k < rounds; k++ {
					r.Recv(0, k)
					r.Send(0, k, payload)
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendRecvPingPongPooled is the pooled counterpart of
// BenchmarkSendRecvPingPong: RecvInto reuses a caller buffer and recycles
// the transport box, so Send draws from the payload pool instead of
// allocating.
func BenchmarkSendRecvPingPongPooled(b *testing.B) {
	w := benchWorld(b, 16)
	payload := make([]float64, 1024)
	bufs := make([][]float64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			const rounds = 16
			switch r.ID() {
			case 0:
				for k := 0; k < rounds; k++ {
					r.Send(1, k, payload)
					bufs[0] = r.RecvInto(1, k, bufs[0])
				}
			case 1:
				for k := 0; k < rounds; k++ {
					bufs[1] = r.RecvInto(0, k, bufs[1])
					r.Send(0, k, payload)
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}
