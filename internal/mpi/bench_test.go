package mpi

import (
	"fmt"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func benchWorld(b *testing.B, n int) *World {
	b.Helper()
	px, py := geom.NearSquareFactors(n)
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(n), topology.DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(n, Config{Net: net})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			w := benchWorld(b, n)
			all, err := w.All()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Run(func(r *Rank) {
					send := make([][]float64, n)
					send[(r.ID()+n/2)%n] = make([]float64, 256)
					all.Alltoallv(r, send)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	w := benchWorld(b, 64)
	all, err := w.All()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			for k := 0; k < 10; k++ {
				all.Barrier(r)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	w := benchWorld(b, 16)
	payload := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *Rank) {
			const rounds = 16
			switch r.ID() {
			case 0:
				for k := 0; k < rounds; k++ {
					r.Send(1, k, payload)
					r.Recv(1, k)
				}
			case 1:
				for k := 0; k < rounds; k++ {
					r.Recv(0, k)
					r.Send(0, k, payload)
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}
