package mpi

import (
	"strings"
	"testing"
	"time"

	"nestdiff/internal/faults"
)

// TestInjectedDelayAdvancesReceiverClock: a delay rule adds virtual
// transit time, so the receiver's clock lands at sentAt + delay even on a
// free (nil-Net) network.
func TestInjectedDelayAdvancesReceiverClock(t *testing.T) {
	plan := faults.NewPlan(1).DelayMessage(0, 1, 7, 1, 2.5)
	w, err := NewWorld(2, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var recvClock float64
	err = w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1.0)
			r.Send(1, 7, []float64{42})
		case 1:
			got := r.Recv(0, 7)
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("payload %v", got)
			}
			recvClock = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvClock < 3.5 {
		t.Fatalf("receiver clock %g, want >= 3.5 (1.0 compute + 2.5 injected delay)", recvClock)
	}
	inj := plan.Injections()
	if len(inj) != 1 || inj[0].Kind != faults.KindMessageDelay {
		t.Fatalf("injection log %+v", inj)
	}
}

// TestInjectedDropTimesOutReceiver: a dropped message must not deadlock
// the world — the receiver times out, its rank fails, and Run returns an
// error while every goroutine unwinds.
func TestInjectedDropTimesOutReceiver(t *testing.T) {
	plan := faults.NewPlan(1).
		DropMessage(0, 1, 7, 1).
		WithRecvTimeout(100 * time.Millisecond)
	w, err := NewWorld(3, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, 7, []float64{1})
			case 1:
				r.Recv(0, 7) // never arrives
			case 2:
				// An innocent blocked rank: must be poisoned free, not hang.
				r.Recv(1, 9)
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dropped message produced no error")
		}
		if !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("error %v, want a receive timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked on a dropped message")
	}
	if inj := plan.Injections(); len(inj) != 1 || inj[0].Kind != faults.KindMessageDrop {
		t.Fatalf("injection log %+v", inj)
	}
}

// TestMailboxDeliveryUnaffectedByForeignRules: rules scoped to another
// stream leave delivery order and payloads intact.
func TestMailboxDeliveryUnaffectedByForeignRules(t *testing.T) {
	plan := faults.NewPlan(1).DropMessage(5, 6, 1, 1) // no such stream here
	w, err := NewWorld(2, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 3, []float64{float64(i)})
			}
			return
		}
		for i := 0; i < 5; i++ {
			got := r.Recv(0, 3)
			if len(got) != 1 || got[0] != float64(i) {
				t.Errorf("message %d = %v", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj := plan.Injections(); len(inj) != 0 {
		t.Fatalf("foreign rule fired: %+v", inj)
	}
}

// TestInjectedCrashPoisonsWorld: a scheduled rank crash surfaces as a Run
// error and unblocks ranks waiting on the dead rank.
func TestInjectedCrashPoisonsWorld(t *testing.T) {
	plan := faults.NewPlan(1).CrashRank(0, 1) // step 0: fires immediately
	w, err := NewWorld(2, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Recv(1, 1) // rank 1 dies before sending
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "injected crash of rank 1") {
			t.Fatalf("error %v, want injected crash", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked after injected crash")
	}
}
