//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions skip under it (instrumentation perturbs
// allocation accounting).
const raceEnabled = true
