package mpi

import (
	"sync"
	"sync/atomic"
	"time"
)

// envelope is one in-flight point-to-point message.
type envelope struct {
	pb       *payloadBuf
	tag      int
	sentAt   float64 // sender's virtual clock when the send was posted
	pairTime float64 // modelled network time for this message
	dead     bool    // tombstone: already consumed by an out-of-order match
}

// payloadBuf boxes a pooled payload buffer. Pooling the box (rather than
// the bare slice) means recycling it costs no allocation: sync.Pool stores
// interface values, and a *payloadBuf pointer fits in one without boxing a
// slice header on every Put.
type payloadBuf struct {
	data []float64
}

// peerQueue is the FIFO of in-flight messages from one sender, a deque
// over a reusable backing slice. Receives may match tags out of order;
// entries consumed from the middle become tombstones that the head index
// skips over, and the backing array is compacted in place when the tail
// reaches its end, so steady-state traffic never reallocates.
type peerQueue struct {
	mu   sync.Mutex
	buf  []envelope
	head int
}

func (q *peerQueue) put(tag int, e envelope) {
	e.tag = tag
	q.mu.Lock()
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, e)
	q.mu.Unlock()
}

// take removes and returns the oldest live message with the given tag, or
// ok=false when none is queued.
func (q *peerQueue) take(tag int) (envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := q.head; i < len(q.buf); i++ {
		e := &q.buf[i]
		if e.dead {
			if i == q.head {
				q.head++
			}
			continue
		}
		if e.tag != tag {
			continue
		}
		out := *e
		e.dead = true
		e.pb = nil
		if i == q.head {
			q.head++
		}
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		return out, true
	}
	return envelope{}, false
}

// mailbox is a rank's receive side: one queue per peer, replacing the old
// map[from,tag] keyed by every message with per-sender ring deques sized to
// the world. Only the owning rank ever receives, so instead of a condition
// variable that Broadcast every put to all sleepers, producers wake the
// single consumer through a one-slot signal channel, and only when it has
// actually parked.
type mailbox struct {
	peers    []peerQueue
	waiting  atomic.Bool
	signal   chan struct{}
	poisonC  chan struct{}
	once     sync.Once
	poisoned atomic.Bool
}

func (b *mailbox) init(n int) {
	b.peers = make([]peerQueue, n)
	b.signal = make(chan struct{}, 1)
	b.poisonC = make(chan struct{})
}

func (b *mailbox) put(from, tag int, e envelope) {
	b.peers[from].put(tag, e)
	if b.waiting.Load() {
		select {
		case b.signal <- struct{}{}:
		default: // consumer already has a pending wakeup
		}
	}
}

// get dequeues the next (from, tag) message, blocking until it arrives.
// A positive timeout bounds the wait (fault injection only): when it
// expires with no message, get returns ok=false instead of blocking
// forever on a dropped message.
//
// Lost wakeups are impossible: the consumer publishes waiting=true and
// then re-scans before parking, while producers enqueue and then check the
// flag — sequential consistency of the atomics means at least one side
// sees the other.
func (b *mailbox) get(from, tag int, timeout time.Duration) (envelope, bool) {
	q := &b.peers[from]
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	for {
		if b.poisoned.Load() {
			panic(panicPoisoned)
		}
		if e, ok := q.take(tag); ok {
			return e, true
		}
		b.waiting.Store(true)
		if e, ok := q.take(tag); ok {
			b.waiting.Store(false)
			return e, true
		}
		select {
		case <-b.signal:
		case <-b.poisonC:
			panic(panicPoisoned)
		case <-expired:
			b.waiting.Store(false)
			return q.take(tag)
		}
		b.waiting.Store(false)
	}
}

func (b *mailbox) poison() {
	b.poisoned.Store(true)
	b.once.Do(func() { close(b.poisonC) })
}
