package mpi

import (
	"sync"
	"sync/atomic"
	"time"
)

// envelope is one in-flight point-to-point message.
type envelope struct {
	data     []float64
	sentAt   float64 // sender's virtual clock when the send was posted
	pairTime float64 // modelled network time for this message
}

type msgKey struct {
	from, tag int
}

// mailbox is a rank's receive queue: messages are matched by (sender, tag)
// in FIFO order, like MPI with a communicator-wide ordering guarantee per
// peer.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[msgKey][]envelope
	poisoned bool
}

func (b *mailbox) init() {
	b.cond = sync.NewCond(&b.mu)
	b.queues = make(map[msgKey][]envelope)
}

func (b *mailbox) put(from, tag int, e envelope) {
	b.mu.Lock()
	k := msgKey{from, tag}
	b.queues[k] = append(b.queues[k], e)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// get dequeues the next (from, tag) message, blocking until it arrives.
// A positive timeout bounds the wait (fault injection only): when it
// expires with no message, get returns ok=false instead of blocking
// forever on a dropped message.
func (b *mailbox) get(from, tag int, timeout time.Duration) (envelope, bool) {
	var expired atomic.Bool
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			expired.Store(true)
			b.cond.Broadcast()
		})
		defer t.Stop()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	k := msgKey{from, tag}
	for {
		if b.poisoned {
			panic(panicPoisoned)
		}
		if q := b.queues[k]; len(q) > 0 {
			e := q[0]
			if len(q) == 1 {
				delete(b.queues, k)
			} else {
				b.queues[k] = q[1:]
			}
			return e, true
		}
		if expired.Load() {
			return envelope{}, false
		}
		b.cond.Wait()
	}
}

func (b *mailbox) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	if b.cond != nil {
		b.cond.Broadcast()
	}
}

// barrier is a reusable n-party barrier with generation counting. An
// optional reduction hook runs exactly once per generation, while all
// parties are inside the barrier — collectives use it to combine clocks.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	gen      int
	poisoned bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties arrive. last runs in the final arriver
// before anyone is released. It returns the generation that completed.
func (b *barrier) await(last func()) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(panicPoisoned)
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		if last != nil {
			last()
		}
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return gen
	}
	for b.gen == gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic(panicPoisoned)
	}
	return gen
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
