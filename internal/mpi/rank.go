package mpi

import "fmt"

// Rank is one process of the world, valid only inside the function passed
// to World.Run and only on its own goroutine.
type Rank struct {
	id    int
	world *World
	clock float64
}

// ID returns the world rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Clock returns the rank's virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Compute advances the rank's virtual clock by the modelled duration of a
// local computation. Negative durations are a programming error.
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("mpi: negative compute time %g", seconds))
	}
	r.clock += seconds
}

// Send posts a message to another world rank. The payload is copied into a
// buffer from the world's pool (recycled by RecvInto on the receiving
// side), so the caller may reuse its buffer immediately. The sender is
// charged the configured send overhead; transit time is charged to the
// receiver. Under a fault plan the message may be silently dropped (never
// delivered) or have extra virtual transit time injected.
func (r *Rank) Send(to, tag int, data []float64) {
	if to < 0 || to >= r.world.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", to))
	}
	var extra float64
	if plan := r.world.faults.Load(); plan != nil {
		drop, delay := plan.MessageFault(r.id, to, tag)
		if drop {
			r.clock += r.world.cfg.SendOverhead
			return
		}
		extra = delay
	}
	pb := r.world.getPayload()
	pb.data = append(pb.data[:0], data...)
	r.world.boxes[to].put(r.id, tag, envelope{
		pb:       pb,
		sentAt:   r.clock,
		pairTime: r.world.pairTime(r.id, to, 8*len(data)) + extra,
	})
	r.clock += r.world.cfg.SendOverhead
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. Ownership of the buffer transfers to the caller
// (it never returns to the world's pool — RecvInto is the recycling
// variant). The rank's clock advances to the message's modelled arrival
// time if that is later. Under a fault plan with a receive timeout, a
// receive that outlives the bound (a dropped message) panics the rank;
// World.Run recovers it and reports the failure.
func (r *Rank) Recv(from, tag int) []float64 {
	e := r.recv(from, tag)
	if e.pb == nil {
		return nil
	}
	return e.pb.data
}

// RecvInto is Recv copying the payload into buf (reused from length zero,
// grown only if too small) and recycling the transport buffer, so
// steady-state point-to-point traffic allocates nothing. It returns the
// filled buffer.
func (r *Rank) RecvInto(from, tag int, buf []float64) []float64 {
	e := r.recv(from, tag)
	if e.pb == nil {
		return buf[:0]
	}
	out := append(buf[:0], e.pb.data...)
	r.world.putPayload(e.pb)
	return out
}

func (r *Rank) recv(from, tag int) envelope {
	if from < 0 || from >= r.world.n {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", from))
	}
	e, ok := r.world.boxes[r.id].get(from, tag, r.world.faults.Load().RecvTimeout())
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d receive from rank %d tag %d timed out (message lost?)", r.id, from, tag))
	}
	if arrival := e.sentAt + e.pairTime; arrival > r.clock {
		r.clock = arrival
	}
	return e
}
