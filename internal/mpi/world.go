// Package mpi is an in-process stand-in for the MPI runtime the paper's
// framework is built on. Ranks execute concurrently as goroutines and
// exchange real data (point-to-point sends and the collectives the paper
// uses: Barrier, Bcast, Gatherv, Alltoallv), while a per-rank virtual
// clock models time on a pluggable interconnect (internal/topology).
//
// The virtual clock is what makes the reproduction possible without a Blue
// Gene/L: computation advances a rank's clock by a modelled amount, a
// receive completes at max(receiver clock, sender clock + message time),
// and collectives synchronize all participating clocks to the maximum plus
// the modelled collective time. Everything is deterministic — including
// the optional link-contention term — so experiments reproduce exactly.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nestdiff/internal/faults"
	"nestdiff/internal/topology"
)

// Config tunes the world.
type Config struct {
	// Net models communication costs. A nil Net makes all communication
	// free (useful for pure-algorithm tests).
	Net topology.Network
	// Faults optionally injects deterministic faults (rank crashes,
	// message delay/drop) into this world. Nil disables injection at the
	// cost of a single pointer check per hook.
	Faults *faults.Plan
	// ContentionBytesPerSec, when positive, adds a bandwidth-sharing term
	// to Alltoallv: total hop-bytes of the exchange divided by this
	// aggregate capacity. It models the link contention that the direct
	// per-pair model of §IV-C1 ignores, so that the dynamic strategy's
	// *predictions* (which use the per-pair model) are imperfect, as in
	// the paper (10 of 12 decisions correct).
	ContentionBytesPerSec float64
	// SendOverhead is the virtual cost charged to a sender per message.
	SendOverhead float64
}

// World owns the ranks and shared collective state.
type World struct {
	n      int
	cfg    Config
	boxes  []mailbox
	faults atomic.Pointer[faults.Plan]

	// payloads recycles point-to-point transport buffers: Send draws from
	// it, RecvInto returns to it, so steady-state traffic allocates
	// nothing.
	payloads sync.Pool

	mu       sync.Mutex
	failures []error
	comms    []*Comm
	poisoned bool
}

func (w *World) getPayload() *payloadBuf {
	if pb, ok := w.payloads.Get().(*payloadBuf); ok {
		return pb
	}
	return &payloadBuf{}
}

func (w *World) putPayload(pb *payloadBuf) {
	pb.data = pb.data[:0]
	w.payloads.Put(pb)
}

// NewWorld creates a world of n ranks.
func NewWorld(n int, cfg Config) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", n)
	}
	if cfg.Net != nil && cfg.Net.Size() < n {
		return nil, fmt.Errorf("mpi: network has %d ranks, world needs %d", cfg.Net.Size(), n)
	}
	w := &World{
		n:     n,
		cfg:   cfg,
		boxes: make([]mailbox, n),
	}
	for i := range w.boxes {
		w.boxes[i].init(n)
	}
	if cfg.Faults != nil {
		w.faults.Store(cfg.Faults)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// SetFaults installs (or, with nil, removes) a fault-injection plan.
// Call it between Run invocations, not while ranks are executing.
func (w *World) SetFaults(p *faults.Plan) { w.faults.Store(p) }

// Run executes fn once per rank, concurrently, and returns after every
// rank finishes. A panic in any rank is captured, the world is poisoned so
// blocked ranks fail fast instead of deadlocking, and the first panic is
// returned as an error.
func (w *World) Run(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	wg.Add(w.n)
	for id := 0; id < w.n; id++ {
		go func(id int) {
			defer wg.Done()
			r := &Rank{id: id, world: w}
			defer func() {
				if p := recover(); p != nil {
					w.fail(fmt.Errorf("mpi: rank %d panicked: %v", id, p))
				}
			}()
			if plan := w.faults.Load(); plan != nil {
				plan.CrashPoint(id) // may panic: an injected rank crash
			}
			fn(r)
		}(id)
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.failures) > 0 {
		return w.failures[0]
	}
	return nil
}

func (w *World) fail(err error) {
	w.mu.Lock()
	w.failures = append(w.failures, err)
	w.poisoned = true
	comms := append([]*Comm(nil), w.comms...)
	w.mu.Unlock()
	for _, c := range comms {
		c.bar.poison()
	}
	for i := range w.boxes {
		w.boxes[i].poison()
	}
}

// register adds a communicator to the poison list, poisoning it right away
// if the world already failed.
func (w *World) register(c *Comm) {
	w.mu.Lock()
	w.comms = append(w.comms, c)
	dead := w.poisoned
	w.mu.Unlock()
	if dead {
		c.bar.poison()
	}
}

func (w *World) pairTime(from, to, bytes int) float64 {
	if w.cfg.Net == nil || from == to {
		return 0
	}
	return w.cfg.Net.PairTime(bytes, w.cfg.Net.Hops(from, to))
}

// alltoallvTime models the full exchange: the per-pair direct-algorithm
// time from the network model plus the optional contention term.
func (w *World) alltoallvTime(msgs []topology.Message) float64 {
	if w.cfg.Net == nil {
		return 0
	}
	t := w.cfg.Net.AlltoallvTime(msgs)
	if w.cfg.ContentionBytesPerSec > 0 {
		var hopBytes float64
		for _, m := range msgs {
			if m.Bytes == 0 || m.From == m.To {
				continue
			}
			hopBytes += float64(w.cfg.Net.Hops(m.From, m.To)) * float64(m.Bytes)
		}
		t += hopBytes / w.cfg.ContentionBytesPerSec
	}
	return t
}

// panicPoisoned is the sentinel raised by blocked operations after a rank
// failure elsewhere; Run's recover reports it.
var panicPoisoned = fmt.Errorf("mpi: world poisoned by a failed rank")
