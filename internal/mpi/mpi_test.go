package mpi

import (
	"math"
	"sync/atomic"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func newTorusWorld(t *testing.T, px, py int, cfg Config) *World {
	t.Helper()
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net = net
	w, err := NewWorld(g.Size(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, Config{}); err == nil {
		t.Error("zero-size world accepted")
	}
	net, err := topology.NewSwitched(4, 2, topology.DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(8, Config{Net: net}); err == nil {
		t.Error("undersized network accepted")
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	w, err := NewWorld(64, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	if err := w.Run(func(r *Rank) {
		atomic.AddInt64(&count, 1)
		if r.Size() != 64 {
			panic("wrong size")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if count != 64 {
		t.Fatalf("ran %d ranks, want 64", count)
	}
}

func TestSendRecvDataIntegrity(t *testing.T) {
	w, err := NewWorld(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1, 2, 3}
			r.Send(1, 7, buf)
			buf[0] = 99 // must not affect the receiver: payload is copied
		}
		if r.ID() == 1 {
			got := r.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				panic("payload corrupted")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTagMatching(t *testing.T) {
	w, err := NewWorld(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 2, []float64{2})
			r.Send(1, 1, []float64{1})
		case 1:
			// Receive in the opposite tag order.
			if got := r.Recv(0, 1); got[0] != 1 {
				panic("tag 1 mismatched")
			}
			if got := r.Recv(0, 2); got[0] != 2 {
				panic("tag 2 mismatched")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvAdvancesClock(t *testing.T) {
	w := newTorusWorld(t, 4, 4, Config{})
	var recvClock float64
	if err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1.0)
			r.Send(15, 0, make([]float64, 1000))
		case 15:
			r.Recv(0, 0)
			recvClock = r.Clock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if recvClock <= 1.0 {
		t.Fatalf("receiver clock %g should exceed sender compute time 1.0", recvClock)
	}
	if recvClock > 1.1 {
		t.Fatalf("receiver clock %g implausibly large", recvClock)
	}
}

func TestPanicInRankIsReported(t *testing.T) {
	w, err := NewWorld(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if r.ID() == 3 {
			panic("boom")
		}
		// Everyone else blocks on a message that never comes; poisoning
		// must wake them instead of deadlocking the test.
		if r.ID() == 5 {
			defer func() { recover() }() // the poison panic
			r.Recv(3, 0)
		}
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestPanicUnblocksCollectives(t *testing.T) {
	w, err := NewWorld(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if r.ID() == 0 {
			panic("collective aborter")
		}
		all.Barrier(r)
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w, err := NewWorld(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 8)
	if err := w.Run(func(r *Rank) {
		r.Compute(float64(r.ID()))
		all.Barrier(r)
		clocks[r.ID()] = r.Clock()
	}); err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks {
		if c != 7.0 {
			t.Fatalf("rank %d clock %g after barrier, want 7.0", id, c)
		}
	}
}

func TestBcast(t *testing.T) {
	w := newTorusWorld(t, 4, 4, Config{})
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	ok := int64(0)
	if err := w.Run(func(r *Rank) {
		var data []float64
		if r.ID() == 2 {
			data = []float64{42, 43}
		}
		got := all.Bcast(r, 2, data)
		if len(got) == 2 && got[0] == 42 && got[1] == 43 {
			atomic.AddInt64(&ok, 1)
		}
		if r.Clock() <= 0 {
			panic("bcast should cost time on a real network")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if ok != 16 {
		t.Fatalf("%d ranks got the broadcast, want 16", ok)
	}
}

func TestGatherv(t *testing.T) {
	w, err := NewWorld(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	var rootGot [][]float64
	if err := w.Run(func(r *Rank) {
		// Variable-length contributions, including an empty one.
		data := make([]float64, r.ID())
		for i := range data {
			data[i] = float64(r.ID()*100 + i)
		}
		out := all.Gatherv(r, 0, data)
		if r.ID() == 0 {
			rootGot = out
		} else if out != nil {
			panic("non-root received gather output")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(rootGot) != 8 {
		t.Fatalf("root got %d buffers", len(rootGot))
	}
	for id, buf := range rootGot {
		if len(buf) != id {
			t.Fatalf("rank %d contributed %d values, want %d", id, len(buf), id)
		}
		for i, v := range buf {
			if v != float64(id*100+i) {
				t.Fatalf("rank %d buffer corrupted at %d: %g", id, i, v)
			}
		}
	}
}

func TestAlltoallvTransposesData(t *testing.T) {
	const n = 16
	w, err := NewWorld(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) {
		send := make([][]float64, n)
		for to := range send {
			if (r.ID()+to)%3 == 0 { // sparse exchange with zero-entries
				send[to] = []float64{float64(r.ID()*1000 + to)}
			}
		}
		recv := all.Alltoallv(r, send)
		for from := range recv {
			want := (from+r.ID())%3 == 0
			if want {
				if len(recv[from]) != 1 || recv[from][0] != float64(from*1000+r.ID()) {
					panic("alltoallv payload wrong")
				}
			} else if len(recv[from]) != 0 {
				panic("unexpected payload")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvChargesTime(t *testing.T) {
	w := newTorusWorld(t, 4, 4, Config{})
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	clocks := make([]float64, 16)
	if err := w.Run(func(r *Rank) {
		send := make([][]float64, 16)
		send[(r.ID()+8)%16] = make([]float64, 4096)
		all.Alltoallv(r, send)
		clocks[r.ID()] = r.Clock()
	}); err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks {
		if c <= 0 {
			t.Fatalf("rank %d clock %g after alltoallv", id, c)
		}
		if c != clocks[0] {
			t.Fatalf("clocks diverge after collective: %g vs %g", c, clocks[0])
		}
	}
}

func TestAlltoallvContentionIncreasesTime(t *testing.T) {
	run := func(cfg Config) float64 {
		w := newTorusWorld(t, 4, 4, cfg)
		all, err := w.All()
		if err != nil {
			t.Fatal(err)
		}
		var clock float64
		if err := w.Run(func(r *Rank) {
			send := make([][]float64, 16)
			for to := range send {
				send[to] = make([]float64, 1024)
			}
			all.Alltoallv(r, send)
			if r.ID() == 0 {
				clock = r.Clock()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return clock
	}
	base := run(Config{})
	congested := run(Config{ContentionBytesPerSec: 1e9})
	if congested <= base {
		t.Fatalf("contention term had no effect: %g vs %g", congested, base)
	}
}

func TestAllreduceMax(t *testing.T) {
	w, err := NewWorld(32, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	bad := int64(0)
	if err := w.Run(func(r *Rank) {
		got := all.AllreduceMax(r, float64(r.ID()%13))
		if got != 12 {
			atomic.AddInt64(&bad, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks got wrong max", bad)
	}
}

func TestSubCommunicator(t *testing.T) {
	w, err := NewWorld(16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.NewComm([]int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 3 {
		t.Fatalf("sub size = %d", sub.Size())
	}
	if i, ok := sub.CommRank(7); !ok || i != 1 {
		t.Fatalf("CommRank(7) = %d,%v", i, ok)
	}
	if sub.WorldRank(2) != 11 {
		t.Fatal("WorldRank wrong")
	}
	if _, ok := sub.CommRank(0); ok {
		t.Fatal("non-member reported as member")
	}
	var sum float64
	if err := w.Run(func(r *Rank) {
		if _, ok := sub.CommRank(r.ID()); !ok {
			return // non-members skip the collective entirely
		}
		got := sub.AllreduceMax(r, float64(r.ID()))
		if r.ID() == 3 {
			sum = got
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 11 {
		t.Fatalf("sub allreduce max = %g, want 11", sum)
	}
}

func TestNewCommValidation(t *testing.T) {
	w, err := NewWorld(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewComm(nil); err == nil {
		t.Error("empty comm accepted")
	}
	if _, err := w.NewComm([]int{0, 0}); err == nil {
		t.Error("duplicate ranks accepted")
	}
	if _, err := w.NewComm([]int{5}); err == nil {
		t.Error("out-of-world rank accepted")
	}
}

func TestComputeNegativePanics(t *testing.T) {
	w, err := NewWorld(1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) { r.Compute(-1) }); err == nil {
		t.Fatal("negative compute accepted")
	}
}

func TestVirtualTimeDeterminism(t *testing.T) {
	run := func() float64 {
		w := newTorusWorld(t, 8, 8, Config{ContentionBytesPerSec: 5e9, SendOverhead: 1e-6})
		all, err := w.All()
		if err != nil {
			t.Fatal(err)
		}
		var final float64
		if err := w.Run(func(r *Rank) {
			r.Compute(float64(r.ID()) * 1e-4)
			send := make([][]float64, 64)
			send[(r.ID()*7+5)%64] = make([]float64, 100+r.ID())
			all.Alltoallv(r, send)
			r.Compute(1e-3)
			all.Barrier(r)
			if r.ID() == 0 {
				final = r.Clock()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return final
	}
	a := run()
	for i := 0; i < 3; i++ {
		if b := run(); b != a || math.IsNaN(b) {
			t.Fatalf("virtual time not deterministic: %g vs %g", a, b)
		}
	}
}

func TestScatterv(t *testing.T) {
	w, err := NewWorld(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	bad := int64(0)
	if err := w.Run(func(r *Rank) {
		var send [][]float64
		if r.ID() == 2 {
			send = make([][]float64, 8)
			for i := range send {
				send[i] = []float64{float64(i * 11)}
			}
		}
		got := all.Scatterv(r, 2, send)
		if len(got) != 1 || got[0] != float64(r.ID()*11) {
			atomic.AddInt64(&bad, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks got wrong scatter payload", bad)
	}
}

func TestAllgatherv(t *testing.T) {
	w, err := NewWorld(6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	bad := int64(0)
	if err := w.Run(func(r *Rank) {
		data := make([]float64, r.ID())
		for i := range data {
			data[i] = float64(r.ID()*10 + i)
		}
		got := all.Allgatherv(r, data)
		for from, buf := range got {
			if len(buf) != from {
				atomic.AddInt64(&bad, 1)
				return
			}
			for i, v := range buf {
				if v != float64(from*10+i) {
					atomic.AddInt64(&bad, 1)
					return
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks saw corrupted allgather", bad)
	}
}

func TestAllreduceSum(t *testing.T) {
	w, err := NewWorld(16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.All()
	if err != nil {
		t.Fatal(err)
	}
	bad := int64(0)
	if err := w.Run(func(r *Rank) {
		got := all.AllreduceSum(r, float64(r.ID()))
		if got != 120 { // 0+1+...+15
			atomic.AddInt64(&bad, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks got wrong sum", bad)
	}
}
