package mpi

// Scratch is one rank's reusable buffer set for pooled communication
// calls: row slices and payload buffers are carved out of bump arenas that
// Reset rewinds without freeing, so steady-state exchanges allocate
// nothing. It serves both sides of a collective — build send rows from it,
// pass it to the *Into variant for the receive rows — and replaces the old
// sync.Pool-backed SendScratch, whose Put paid one boxing allocation per
// recycled buffer.
//
// A Scratch is intentionally NOT safe for concurrent use: give each rank
// goroutine its own (the arenas need no locks that way).
//
// Lifetime: every buffer handed out since the last Reset stays valid until
// the next Reset. That is exactly what the two-phase collectives need — a
// collective has returned on every member before it returns on any caller,
// so resetting after the results are consumed never races with a peer
// still copying.
type Scratch struct {
	rows     [][]float64
	rowsUsed int
	arena    []float64
}

// Reset rewinds the arenas; every buffer handed out earlier is considered
// free and will be reused.
func (s *Scratch) Reset() {
	s.rowsUsed = 0
	s.arena = s.arena[:0]
}

// Rows returns an all-nil row slice of length n, valid until Reset.
func (s *Scratch) Rows(n int) [][]float64 {
	need := s.rowsUsed + n
	if need > cap(s.rows) {
		// Chunks handed out earlier keep the old backing array alive; only
		// new requests draw from the fresh one.
		s.rows = make([][]float64, need, 2*need)
	}
	s.rows = s.rows[:need]
	chunk := s.rows[s.rowsUsed:need]
	for i := range chunk {
		chunk[i] = nil
	}
	s.rowsUsed = need
	return chunk
}

// Buf returns an empty float64 buffer with capacity c, valid until Reset.
// Appending beyond c falls off the arena onto the heap, so request the
// exact size.
func (s *Scratch) Buf(c int) []float64 {
	if len(s.arena)+c > cap(s.arena) {
		// As in Rows: outstanding buffers keep the old arena alive.
		s.arena = make([]float64, 0, 2*(len(s.arena)+c))
	}
	off := len(s.arena)
	s.arena = s.arena[:off+c]
	return s.arena[off : off : off+c]
}
