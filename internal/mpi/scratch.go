package mpi

import "sync"

// SendScratch recycles Alltoallv send rows and their payload buffers so
// steady-state redistribution allocates nothing on the send side. It is
// safe for concurrent use by many rank goroutines.
//
// Lifetime contract: Alltoallv copies every receive row out between its
// two barriers, so no rank still references a sender's payloads once the
// collective returns on that sender — Release the rows immediately after
// the Alltoallv call.
type SendScratch struct {
	rows     sync.Pool // *[][]float64
	payloads sync.Pool // *[]float64
}

// Rows returns an all-nil send-row slice of length n.
func (s *SendScratch) Rows(n int) [][]float64 {
	if p, ok := s.rows.Get().(*[][]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([][]float64, n)
}

// Payload returns an empty payload buffer with capacity at least c.
func (s *SendScratch) Payload(c int) []float64 {
	if p, ok := s.payloads.Get().(*[]float64); ok && cap(*p) >= c {
		return (*p)[:0]
	}
	return make([]float64, 0, c)
}

// Release returns the rows slice and every payload it holds to the pools.
func (s *SendScratch) Release(rows [][]float64) {
	for i, payload := range rows {
		if payload != nil {
			p := payload
			s.payloads.Put(&p)
			rows[i] = nil
		}
	}
	r := rows
	s.rows.Put(&r)
}
