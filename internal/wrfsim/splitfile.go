package wrfsim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// Split is the per-rank simulation output of one time step: the rank's
// block of the parent domain with its QCLOUD and OLR samples. This is what
// "each process running WRF generates ... and writes into a split file"
// (§III).
type Split struct {
	Rank   int
	Px, Py int       // the WRF process grid the domain was decomposed over
	Bounds geom.Rect // this rank's block, in parent grid points
	Step   int
	QCloud *field.Field
	OLR    *field.Field
}

// Splits decomposes the model's current state over a Px×Py process grid
// and returns one Split per rank, in rank order.
func (m *Model) Splits(pg geom.Grid) ([]Split, error) {
	if pg.Px > m.cfg.NX || pg.Py > m.cfg.NY {
		return nil, fmt.Errorf("wrfsim: process grid %dx%d larger than domain %dx%d",
			pg.Px, pg.Py, m.cfg.NX, m.cfg.NY)
	}
	bd := geom.NewBlockDist(m.cfg.NX, m.cfg.NY, pg.Bounds())
	out := make([]Split, 0, pg.Size())
	bd.Blocks(func(p geom.Point, blk geom.Rect) {
		out = append(out, Split{
			Rank:   pg.Rank(p),
			Px:     pg.Px,
			Py:     pg.Py,
			Bounds: blk,
			Step:   m.step,
			QCloud: m.qcloud.Sub(blk),
			OLR:    m.olr.Sub(blk),
		})
	})
	return out, nil
}

const (
	splitMagic   = uint32(0x4644534e) // "NSDF"
	splitVersion = uint32(1)
)

// WriteSplit serializes one split in the binary split-file format.
func WriteSplit(w io.Writer, s Split) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{
		splitMagic, splitVersion,
		uint32(s.Rank), uint32(s.Px), uint32(s.Py),
		uint32(s.Bounds.X0), uint32(s.Bounds.Y0),
		uint32(s.Bounds.Width()), uint32(s.Bounds.Height()),
		uint32(s.Step),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("wrfsim: write split header: %w", err)
		}
	}
	for _, f := range []*field.Field{s.QCloud, s.OLR} {
		if f.NX != s.Bounds.Width() || f.NY != s.Bounds.Height() {
			return fmt.Errorf("wrfsim: field extents %dx%d do not match block %v", f.NX, f.NY, s.Bounds)
		}
		if err := binary.Write(bw, binary.LittleEndian, f.Data); err != nil {
			return fmt.Errorf("wrfsim: write split payload: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSplit parses one split from the binary split-file format.
func ReadSplit(r io.Reader) (Split, error) {
	br := bufio.NewReader(r)
	var hdr [10]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return Split{}, fmt.Errorf("wrfsim: read split header: %w", err)
		}
	}
	if hdr[0] != splitMagic {
		return Split{}, fmt.Errorf("wrfsim: bad split magic %#x", hdr[0])
	}
	if hdr[1] != splitVersion {
		return Split{}, fmt.Errorf("wrfsim: unsupported split version %d", hdr[1])
	}
	w, h := int(hdr[7]), int(hdr[8])
	// Bound the allocation implied by the header before trusting it: a
	// single rank's block cannot plausibly exceed 2^24 grid points (the
	// whole real-scale parent domain is ~2·10^5).
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 || w*h > 1<<24 {
		return Split{}, fmt.Errorf("wrfsim: implausible block extents %dx%d", w, h)
	}
	s := Split{
		Rank:   int(hdr[2]),
		Px:     int(hdr[3]),
		Py:     int(hdr[4]),
		Bounds: geom.NewRect(int(hdr[5]), int(hdr[6]), w, h),
		Step:   int(hdr[9]),
		QCloud: field.New(w, h),
		OLR:    field.New(w, h),
	}
	for _, f := range []*field.Field{s.QCloud, s.OLR} {
		if err := binary.Read(br, binary.LittleEndian, f.Data); err != nil {
			return Split{}, fmt.Errorf("wrfsim: read split payload: %w", err)
		}
	}
	return s, nil
}

// SplitFileName returns the conventional name of rank r's split file for a
// step, e.g. "wrfout_d01_000123_rank0042.nsf".
func SplitFileName(step, rank int) string {
	return fmt.Sprintf("wrfout_d01_%06d_rank%04d.nsf", step, rank)
}

// WriteSplitFiles writes every rank's split file for the current model
// state into dir.
func (m *Model) WriteSplitFiles(dir string, pg geom.Grid) error {
	splits, err := m.Splits(pg)
	if err != nil {
		return err
	}
	for _, s := range splits {
		path := filepath.Join(dir, SplitFileName(s.Step, s.Rank))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("wrfsim: create split file: %w", err)
		}
		if err := WriteSplit(f, s); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wrfsim: close split file: %w", err)
		}
	}
	return nil
}

// ReadSplitFile loads one split file from disk.
func ReadSplitFile(path string) (Split, error) {
	f, err := os.Open(path)
	if err != nil {
		return Split{}, fmt.Errorf("wrfsim: open split file: %w", err)
	}
	defer f.Close()
	return ReadSplit(f)
}
