package wrfsim

import (
	"fmt"
	"math"
	"time"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/obs"
)

// ParallelNest is a nested simulation whose fine-resolution field lives
// block-distributed over the processor sub-rectangle the allocator gave
// it — the paper's actual runtime arrangement ("each nested simulation is
// executed on disjoint subsets of the total number of processors"). It
// steps with halo exchange on its sub-grid, and when the allocator moves
// it to a different sub-rectangle, Redistribute performs the
// block-intersection Alltoallv in place: the new owners receive exactly
// the state they need and continue stepping, bit-identically to a serial
// nest (verified in tests).
type ParallelNest struct {
	ID     int
	Region geom.Rect // region of interest in parent grid points

	pg    geom.Grid
	procs geom.Rect // current processor sub-rectangle
	nx    int       // fine extents
	ny    int
	// local[rank] is the block owned by that rank (nil for ranks outside
	// the sub-grid). A slice, not a map: each rank's goroutine writes only
	// its own element, which is race-free.
	local []*field.Field
	// next, ext, and sendBuf are per-rank step scratch (advection double
	// buffer, halo-extended source, halo staging buffer), indexed like
	// local and touched only by the owning rank's goroutine. They are
	// sized lazily in Step — block shapes change on Redistribute — carry
	// no state between substeps, and are never checkpointed.
	next    []*field.Field
	ext     []*field.Field
	sendBuf [][]float64
	recvBuf [][]float64
	// redistScratch[rank] is that rank's Alltoallv arena, reused across
	// redistributions (indexed like local: each rank touches only its own
	// element, which is race-free).
	redistScratch []mpi.Scratch
	steps         int

	// tracer, when set, receives one redist event per executed Alltoallv.
	// It is runtime wiring, not state: checkpoints never carry it.
	tracer *obs.Tracer
}

// SetTracer installs a structured tracer on the nest (nil removes it);
// Redistribute then emits one event per executed exchange.
func (n *ParallelNest) SetTracer(tr *obs.Tracer) { n.tracer = tr }

// NewParallelNest spawns a distributed nest over the given processor
// sub-rectangle, initializing each owner's block by interpolating the
// parent model's field (exactly like the serial SpawnNest, then
// scattered).
func (m *Model) NewParallelNest(id int, region geom.Rect, pg geom.Grid, procs geom.Rect) (*ParallelNest, error) {
	if region.Empty() || !m.qcloud.Bounds().ContainsRect(region) {
		return nil, fmt.Errorf("wrfsim: invalid nest region %v", region)
	}
	if procs.Empty() || !pg.Bounds().ContainsRect(procs) {
		return nil, fmt.Errorf("wrfsim: invalid processor sub-rectangle %v", procs)
	}
	fine := field.Refine(m.qcloud, region, NestRatio)
	n := &ParallelNest{
		ID:     id,
		Region: region,
		pg:     pg,
		nx:     fine.NX,
		ny:     fine.NY,
	}
	if err := n.scatter(fine, procs); err != nil {
		return nil, err
	}
	return n, nil
}

// scatter distributes a full fine field into per-rank blocks over procs.
func (n *ParallelNest) scatter(fine *field.Field, procs geom.Rect) error {
	dist := geom.NewBlockDist(n.nx, n.ny, procs)
	local := make([]*field.Field, n.pg.Size())
	var bad geom.Rect
	ok := true
	dist.Blocks(func(p geom.Point, blk geom.Rect) {
		if blk.Width() < haloWidth || blk.Height() < haloWidth {
			ok = false
			bad = blk
			return
		}
		local[n.pg.Rank(p)] = fine.Sub(blk)
	})
	if !ok {
		return fmt.Errorf("wrfsim: nest %d block %v narrower than the %d-cell halo; use fewer ranks",
			n.ID, bad, haloWidth)
	}
	n.procs = procs
	n.local = local
	n.next = make([]*field.Field, n.pg.Size())
	n.ext = make([]*field.Field, n.pg.Size())
	n.sendBuf = make([][]float64, n.pg.Size())
	n.recvBuf = make([][]float64, n.pg.Size())
	n.redistScratch = make([]mpi.Scratch, n.pg.Size())
	return nil
}

// Procs returns the current processor sub-rectangle.
func (n *ParallelNest) Procs() geom.Rect { return n.procs }

// Size returns the fine-grid extents.
func (n *ParallelNest) Size() (nx, ny int) { return n.nx, n.ny }

// StepCount returns completed fine substeps.
func (n *ParallelNest) StepCount() int { return n.steps }

// Step advances the nest through NestRatio fine substeps on the world,
// mirroring the serial Nest physics. Ranks outside the nest's sub-grid
// return immediately (in the paper's framework they are busy with other
// nests). cells must be the parent model's current cell population.
func (n *ParallelNest) Step(w *mpi.World, cfg Config, cells []Cell) error {
	if w.Size() != n.pg.Size() {
		return fmt.Errorf("wrfsim: world of %d ranks for grid of %d", w.Size(), n.pg.Size())
	}
	dist := geom.NewBlockDist(n.nx, n.ny, n.procs)
	dtFine := cfg.Dt / NestRatio
	ux := cfg.FlowU * dtFine * NestRatio // fine cells per substep
	vy := cfg.FlowV * dtFine * NestRatio
	decay := math.Exp(-dtFine / cfg.DecayTau)

	for s := 0; s < NestRatio; s++ {
		err := w.Run(func(r *mpi.Rank) {
			me := n.pg.Coord(r.ID())
			if !n.procs.Contains(me) {
				return
			}
			blk := dist.BlockOf(me)
			f := n.local[r.ID()]

			// Deposit the scaled sources into the owned block.
			for _, c := range cells {
				scaled := c
				scaled.Peak = c.Peak / NestRatio
				depositNest(f, blk, scaled, cfg.Dt, n.Region)
			}
			r.Compute(float64(blk.Area()) * 5e-9)

			ext := n.exchangeNestHalo(r, dist, blk, f)

			// Advect+decay into the rank's double buffer, then swap it
			// with the owned block.
			rid := r.ID()
			next := n.next[rid]
			if next == nil || next.NX != blk.Width() || next.NY != blk.Height() {
				next = field.New(blk.Width(), blk.Height())
			}
			field.AdvectDecay(next, ext, field.AdvectSpec{
				UX: ux, VY: vy,
				GX0: blk.X0, GY0: blk.Y0,
				GNX: n.nx, GNY: n.ny,
				OffX: haloWidth, OffY: haloWidth,
				Decay: decay,
			})
			n.local[rid], n.next[rid] = next, f
			r.Compute(float64(blk.Area()) * 2e-8)
		})
		if err != nil {
			return err
		}
		n.steps++
	}
	return nil
}

// exchangeNestHalo mirrors ParallelModel.exchangeHalo on the nest's
// sub-grid.
func (n *ParallelNest) exchangeNestHalo(r *mpi.Rank, dist geom.BlockDist, blk geom.Rect, f *field.Field) *field.Field {
	rid := r.ID()
	me := n.pg.Coord(rid)
	// Reuse the rank's extended buffer; zero it first so cells no strip
	// rewrites stay at their fresh-field value.
	ext := n.ext[rid]
	if ext == nil || ext.NX != blk.Width()+2*haloWidth || ext.NY != blk.Height()+2*haloWidth {
		ext = field.New(blk.Width()+2*haloWidth, blk.Height()+2*haloWidth)
		n.ext[rid] = ext
	} else {
		ext.Fill(0)
	}
	ext.SetSub(geom.NewRect(haloWidth, haloWidth, blk.Width(), blk.Height()), f)

	type nb struct{ dx, dy int }
	neighbours := make([]nb, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			p := geom.Point{X: me.X + dx, Y: me.Y + dy}
			if n.procs.Contains(p) {
				neighbours = append(neighbours, nb{dx, dy})
			}
		}
	}
	// Rank.Send copies payloads, so one staging buffer per rank serves
	// every neighbour in turn.
	for _, nbr := range neighbours {
		strip := stripOf(blk, nbr.dx, nbr.dy)
		payload := n.sendBuf[rid][:0]
		strip.Cells(func(p geom.Point) {
			payload = append(payload, f.At(p.X-blk.X0, p.Y-blk.Y0))
		})
		n.sendBuf[rid] = payload
		to := n.pg.Rank(geom.Point{X: me.X + nbr.dx, Y: me.Y + nbr.dy})
		r.Send(to, n.steps*16+tag(nbr.dx, nbr.dy), payload)
	}
	for _, nbr := range neighbours {
		from := geom.Point{X: me.X + nbr.dx, Y: me.Y + nbr.dy}
		// RecvInto reuses the rank's staging buffer and recycles the
		// transport buffer, keeping the steady-state exchange allocation-free.
		payload := r.RecvInto(n.pg.Rank(from), n.steps*16+tag(-nbr.dx, -nbr.dy), n.recvBuf[rid])
		n.recvBuf[rid] = payload
		theirBlk := dist.BlockOf(from)
		strip := stripOf(theirBlk, -nbr.dx, -nbr.dy)
		if strip.Area() != len(payload) {
			panic(fmt.Sprintf("nest halo payload %d != strip %v", len(payload), strip))
		}
		i := 0
		strip.Cells(func(p geom.Point) {
			ex := p.X - blk.X0 + haloWidth
			ey := p.Y - blk.Y0 + haloWidth
			if ex >= 0 && ex < ext.NX && ey >= 0 && ey < ext.NY {
				ext.Set(ex, ey, payload[i])
			}
			i++
		})
	}
	return ext
}

// depositNest adds the cell's Gaussian source restricted to the owned
// fine block (same maths as the serial Model.deposit at NestRatio with
// the region origin).
func depositNest(f *field.Field, blk geom.Rect, c Cell, dt float64, region geom.Rect) {
	inten := c.Intensity() * dt / 60
	if inten <= 0 {
		return
	}
	ratio := float64(NestRatio)
	cx := (c.X - float64(region.X0)) * ratio
	cy := (c.Y - float64(region.Y0)) * ratio
	rad := c.Radius * ratio
	nx := region.Width() * NestRatio
	ny := region.Height() * NestRatio
	// Global fine-domain extent of the source (as the serial deposit
	// computes it), intersected with the owned block.
	x0 := max(blk.X0, max(0, int(cx-3*rad)))
	x1 := min(blk.X1-1, min(nx-1, int(cx+3*rad)+1))
	y0 := max(blk.Y0, max(0, int(cy-3*rad)))
	y1 := min(blk.Y1-1, min(ny-1, int(cy+3*rad)+1))
	f.AddSeparableGaussian(cx, cy, inten, 1/(2*rad*rad), x0, y0, x1, y1, blk.X0, blk.Y0)
}

// Redistribute moves the nest's distributed state from its current
// sub-rectangle to newProcs with one Alltoallv (§IV, Fig. 3): senders ship
// the intersections of their old block with each receiver's new block,
// uninvolved ranks participate with zero counts. Returns the modelled
// exchange time.
func (n *ParallelNest) Redistribute(w *mpi.World, newProcs geom.Rect) (float64, error) {
	if w.Size() != n.pg.Size() {
		return 0, fmt.Errorf("wrfsim: world of %d ranks for grid of %d", w.Size(), n.pg.Size())
	}
	if newProcs.Empty() || !n.pg.Bounds().ContainsRect(newProcs) {
		return 0, fmt.Errorf("wrfsim: invalid new sub-rectangle %v", newProcs)
	}
	oldDist := geom.NewBlockDist(n.nx, n.ny, n.procs)
	newDist := geom.NewBlockDist(n.nx, n.ny, newProcs)
	// Pre-check the new decomposition's halo viability.
	var bad geom.Rect
	ok := true
	newDist.Blocks(func(_ geom.Point, blk geom.Rect) {
		if blk.Width() < haloWidth || blk.Height() < haloWidth {
			ok = false
			bad = blk
		}
	})
	if !ok {
		return 0, fmt.Errorf("wrfsim: nest %d new block %v narrower than the %d-cell halo",
			n.ID, bad, haloWidth)
	}

	all, err := w.All()
	if err != nil {
		return 0, err
	}
	tr := n.tracer
	var wallStart time.Time
	if tr != nil {
		wallStart = time.Now()
	}
	oldProcs := n.procs
	newLocal := make([]*field.Field, n.pg.Size())
	var elapsed float64
	runErr := w.Run(func(r *mpi.Rank) {
		me := n.pg.Coord(r.ID())
		// Send and receive rows both come from the rank's own scratch
		// arena; Alltoallv copies receive rows out before its final
		// rendezvous, so rewinding here cannot race with a peer still
		// reading a previous redistribution's payloads.
		s := &n.redistScratch[r.ID()]
		s.Reset()
		start := r.Clock()

		send := s.Rows(n.pg.Size())
		if n.procs.Contains(me) {
			myBlock := oldDist.BlockOf(me)
			f := n.local[r.ID()]
			newDist.Blocks(func(recv geom.Point, rblk geom.Rect) {
				inter := myBlock.Intersect(rblk)
				if inter.Empty() {
					return
				}
				payload := s.Buf(inter.Area())
				inter.Cells(func(p geom.Point) {
					payload = append(payload, f.At(p.X-myBlock.X0, p.Y-myBlock.Y0))
				})
				send[n.pg.Rank(recv)] = payload
			})
		}

		recv := all.AlltoallvInto(r, send, s)

		if newProcs.Contains(me) {
			myBlock := newDist.BlockOf(me)
			out := field.New(myBlock.Width(), myBlock.Height())
			for from := 0; from < n.pg.Size(); from++ {
				payload := recv[from]
				if len(payload) == 0 {
					continue
				}
				sender := n.pg.Coord(from)
				inter := oldDist.BlockOf(sender).Intersect(myBlock)
				if inter.Area() != len(payload) {
					panic(fmt.Sprintf("redistribution payload %d != intersection %v", len(payload), inter))
				}
				i := 0
				inter.Cells(func(p geom.Point) {
					out.Set(p.X-myBlock.X0, p.Y-myBlock.Y0, payload[i])
					i++
				})
			}
			newLocal[r.ID()] = out
		}
		if r.ID() == 0 {
			elapsed = r.Clock() - start
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	n.procs = newProcs
	n.local = newLocal
	if tr != nil {
		// Remote payload of the executed exchange: every old-block/new-block
		// intersection whose owner changed, at 8 bytes per float64 sample.
		remote := 0
		oldDist.Blocks(func(sp geom.Point, sblk geom.Rect) {
			newDist.Blocks(func(rp geom.Point, rblk geom.Rect) {
				if sp != rp {
					remote += sblk.Intersect(rblk).Area()
				}
			})
		})
		tr.Emit(obs.Event{
			Kind:        obs.KindRedist,
			NestID:      n.ID,
			DurNS:       time.Since(wallStart).Nanoseconds(),
			Actual:      elapsed,
			RedistBytes: int64(remote) * 8,
			Detail:      fmt.Sprintf("procs %v -> %v", oldProcs, newProcs),
		})
	}
	return elapsed, nil
}

// Gather reassembles the full fine field (testing/feedback only).
func (n *ParallelNest) Gather() *field.Field {
	return n.GatherInto(nil)
}

// GatherInto reassembles the full fine field into out, reallocating only
// when out is nil or the wrong shape — the allocation-free counterpart of
// Gather for callers (the checkpoint encoder) that keep a scratch field
// across intervals. The blocks tile the fine grid exactly, so every sample
// of out is overwritten.
func (n *ParallelNest) GatherInto(out *field.Field) *field.Field {
	if out == nil || out.NX != n.nx || out.NY != n.ny {
		out = field.New(n.nx, n.ny)
	}
	dist := geom.NewBlockDist(n.nx, n.ny, n.procs)
	dist.Blocks(func(p geom.Point, blk geom.Rect) {
		out.SetSub(blk, n.local[n.pg.Rank(p)])
	})
	return out
}

// Feedback coarsens the distributed nest's state back onto the parent
// domain (two-way nesting), like the serial Nest.Feedback.
func (n *ParallelNest) Feedback(m *Model) {
	coarse := field.Coarsen(n.Gather(), NestRatio)
	m.qcloud.SetSub(n.Region, coarse)
	m.updateOLR()
}
