package wrfsim

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"nestdiff/internal/geom"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 60, 45
	cfg.SpawnRate = 0
	return cfg
}

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func stormCell() Cell {
	return Cell{X: 30, Y: 22, Radius: 4, Peak: 2, Life: 7200}
}

func TestNewModelValidation(t *testing.T) {
	bad := smallConfig()
	bad.NX = 0
	if _, err := NewModel(bad); err == nil {
		t.Error("zero NX accepted")
	}
	bad = smallConfig()
	bad.Dt = 0
	if _, err := NewModel(bad); err == nil {
		t.Error("zero Dt accepted")
	}
	bad = smallConfig()
	bad.DecayTau = -1
	if _, err := NewModel(bad); err == nil {
		t.Error("negative DecayTau accepted")
	}
}

func TestCellIntensityEnvelope(t *testing.T) {
	c := Cell{Peak: 2, Life: 100}
	if c.Intensity() != 0 {
		t.Error("newborn cell should start at 0 intensity")
	}
	c.Age = 50
	if math.Abs(c.Intensity()-2) > 1e-12 {
		t.Errorf("mid-life intensity = %g, want peak 2", c.Intensity())
	}
	c.Age = 100
	if c.Intensity() != 0 {
		t.Error("expired cell should emit 0")
	}
}

func TestClearSkyOLR(t *testing.T) {
	m := mustModel(t, smallConfig())
	if got := m.OLR().At(5, 5); got != m.Config().OLRClear {
		t.Fatalf("clear-sky OLR = %g, want %g", got, m.Config().OLRClear)
	}
}

func TestStormCreatesLowOLRRegion(t *testing.T) {
	// A convective cell must develop high QCLOUD and OLR below the paper's
	// 200 W/m² detection threshold at its core, while far-field stays
	// clear.
	m := mustModel(t, smallConfig())
	c := stormCell()
	if err := m.InjectCell(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ { // one simulated hour
		m.Step()
	}
	core := m.OLR().At(int(c.X)+2, int(c.Y)) // slight downstream drift
	if core > 200 {
		t.Fatalf("storm core OLR = %g, want <= 200", core)
	}
	if q := m.QCloud().At(int(c.X)+2, int(c.Y)); q <= 0.5 {
		t.Fatalf("storm core QCLOUD = %g, want substantial", q)
	}
	farOLR := m.OLR().At(2, 40)
	if farOLR < 270 {
		t.Fatalf("far-field OLR = %g, want near clear-sky", farOLR)
	}
}

func TestCloudDecaysAfterCellDies(t *testing.T) {
	m := mustModel(t, smallConfig())
	c := stormCell()
	c.Life = 1800 // short-lived
	if err := m.InjectCell(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		m.Step()
	}
	peak := m.QCloud().Max()
	for i := 0; i < 120; i++ { // four more hours
		m.Step()
	}
	if after := m.QCloud().Max(); after > peak/4 {
		t.Fatalf("cloud water %g did not decay from peak %g", after, peak)
	}
	if len(m.Cells()) != 0 {
		t.Fatal("expired cell not removed")
	}
}

func TestAdvectionMovesCloudDownstream(t *testing.T) {
	cfg := smallConfig()
	cfg.FlowU = 5e-3 // strong westerly
	cfg.FlowV = 0
	m := mustModel(t, cfg)
	cell := Cell{X: 15, Y: 22, VX: 0, VY: 0, Radius: 3, Peak: 2, Life: 600}
	if err := m.InjectCell(cell); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Step()
	}
	centroidEarly := qcloudCentroidX(m)
	for i := 0; i < 25; i++ {
		m.Step()
	}
	centroidLate := qcloudCentroidX(m)
	if centroidLate <= centroidEarly {
		t.Fatalf("cloud centroid did not advect east: %g -> %g", centroidEarly, centroidLate)
	}
}

func qcloudCentroidX(m *Model) float64 {
	q := m.QCloud()
	var wsum, xsum float64
	for y := 0; y < q.NY; y++ {
		for x := 0; x < q.NX; x++ {
			v := q.At(x, y)
			wsum += v
			xsum += v * float64(x)
		}
	}
	if wsum == 0 {
		return 0
	}
	return xsum / wsum
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := smallConfig()
		cfg.SpawnRate = 4
		m := mustModel(t, cfg)
		for i := 0; i < 40; i++ {
			m.Step()
		}
		return m.QCloud().Sum()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("model not deterministic: %g vs %g", a, b)
	}
	if a == 0 {
		t.Fatal("spontaneous genesis produced no cloud")
	}
}

func TestInjectCellValidation(t *testing.T) {
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(Cell{Radius: 0, Peak: 1, Life: 1}); err == nil {
		t.Error("zero radius accepted")
	}
	if err := m.InjectCell(Cell{Radius: 1, Peak: -1, Life: 1}); err == nil {
		t.Error("negative peak accepted")
	}
}

func TestSpawnNestInterpolatesParent(t *testing.T) {
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(stormCell()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Step()
	}
	region := geom.NewRect(20, 12, 20, 20)
	n, err := m.SpawnNest(1, region)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := n.Size()
	if nx != 60 || ny != 60 {
		t.Fatalf("nest extents %dx%d, want 60x60 (3x refinement)", nx, ny)
	}
	// The refined field must agree with the parent at corresponding points
	// (both sample the same smooth field).
	parentQ := m.QCloud().At(30, 22)
	nestQ := n.QCloud().Bilinear(float64((30-20)*3)+1, float64((22-12)*3)+1)
	if math.Abs(parentQ-nestQ) > 0.3*math.Max(parentQ, 1e-9) {
		t.Fatalf("nest/parent mismatch at storm core: parent %g, nest %g", parentQ, nestQ)
	}
}

func TestSpawnNestValidation(t *testing.T) {
	m := mustModel(t, smallConfig())
	if _, err := m.SpawnNest(1, geom.Rect{}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := m.SpawnNest(1, geom.NewRect(50, 40, 20, 20)); err == nil {
		t.Error("out-of-domain region accepted")
	}
}

func TestNestStepTracksParent(t *testing.T) {
	// Stepping nest and parent together keeps the nest's coarsened state
	// close to the parent's state over the region: same physics, finer
	// grid.
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(stormCell()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Step()
	}
	region := geom.NewRect(18, 10, 24, 24)
	n, err := m.SpawnNest(1, region)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Step()
		n.Step(m)
	}
	if n.StepCount() != 10*NestRatio {
		t.Fatalf("nest substeps = %d, want %d", n.StepCount(), 10*NestRatio)
	}
	// Compare region means.
	parentMean := m.QCloud().Sub(region).Sum() / float64(region.Area())
	nestMean := n.QCloud().Sum() / float64(n.QCloud().NX*n.QCloud().NY)
	if parentMean <= 0 {
		t.Fatal("no cloud in region")
	}
	if rel := math.Abs(parentMean-nestMean) / parentMean; rel > 0.25 {
		t.Fatalf("nest mean %g deviates %.0f%% from parent mean %g", nestMean, rel*100, parentMean)
	}
}

func TestNestFeedback(t *testing.T) {
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(stormCell()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Step()
	}
	region := geom.NewRect(18, 10, 24, 24)
	n, err := m.SpawnNest(1, region)
	if err != nil {
		t.Fatal(err)
	}
	n.QCloud().Fill(7)
	n.Feedback(m)
	if got := m.QCloud().At(20, 12); math.Abs(got-7) > 1e-9 {
		t.Fatalf("feedback did not write parent: %g", got)
	}
	// OLR must be refreshed consistently.
	wantOLR := m.Config().OLRClear - m.Config().OLRPerQ*7
	if wantOLR < m.Config().OLRMin {
		wantOLR = m.Config().OLRMin
	}
	if got := m.OLR().At(20, 12); math.Abs(got-wantOLR) > 1e-9 {
		t.Fatalf("feedback OLR = %g, want %g", got, wantOLR)
	}
}

func TestSplitsTileDomain(t *testing.T) {
	m := mustModel(t, smallConfig())
	pg := geom.NewGrid(4, 3)
	splits, err := m.Splits(pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 12 {
		t.Fatalf("%d splits, want 12", len(splits))
	}
	area := 0
	for i, s := range splits {
		if s.Rank != i {
			t.Fatalf("split %d has rank %d", i, s.Rank)
		}
		if s.QCloud.NX != s.Bounds.Width() || s.OLR.NY != s.Bounds.Height() {
			t.Fatal("split field extents mismatch bounds")
		}
		area += s.Bounds.Area()
	}
	if area != 60*45 {
		t.Fatalf("splits cover %d cells, want %d", area, 60*45)
	}
}

func TestSplitsRejectOversizedGrid(t *testing.T) {
	m := mustModel(t, smallConfig())
	if _, err := m.Splits(geom.NewGrid(100, 3)); err == nil {
		t.Fatal("oversized process grid accepted")
	}
}

func TestSplitSerializationRoundTrip(t *testing.T) {
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(stormCell()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Step()
	}
	splits, err := m.Splits(geom.NewGrid(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSplit(&buf, splits[5]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSplit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := splits[5]
	if got.Rank != s.Rank || got.Px != s.Px || got.Py != s.Py ||
		got.Bounds != s.Bounds || got.Step != s.Step {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	for i := range s.QCloud.Data {
		if got.QCloud.Data[i] != s.QCloud.Data[i] || got.OLR.Data[i] != s.OLR.Data[i] {
			t.Fatal("payload mismatch")
		}
	}
}

func TestReadSplitRejectsGarbage(t *testing.T) {
	if _, err := ReadSplit(bytes.NewReader([]byte("not a split file at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	m := mustModel(t, smallConfig())
	splits, err := m.Splits(geom.NewGrid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSplit(&buf, splits[0]); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSplit(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteAndReadSplitFiles(t *testing.T) {
	dir := t.TempDir()
	m := mustModel(t, smallConfig())
	pg := geom.NewGrid(3, 2)
	if err := m.WriteSplitFiles(dir, pg); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 6; rank++ {
		s, err := ReadSplitFile(filepath.Join(dir, SplitFileName(0, rank)))
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if s.Rank != rank {
			t.Fatalf("file for rank %d contains rank %d", rank, s.Rank)
		}
	}
	if _, err := ReadSplitFile(filepath.Join(dir, "missing.nsf")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestMergeCellsCoalescesOverlapping(t *testing.T) {
	cfg := smallConfig()
	cfg.MergeEnabled = true
	m := mustModel(t, cfg)
	// Two cells on a collision course: B drifts west into A.
	if err := m.InjectCell(Cell{X: 28, Y: 22, Radius: 4, Peak: 1.5, Life: 14400}); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 40, Y: 22, VX: -2e-3, Radius: 4, Peak: 1.2, Life: 10800}); err != nil {
		t.Fatal(err)
	}
	merged := false
	for i := 0; i < 60 && !merged; i++ {
		m.Step()
		merged = len(m.Cells()) == 1
	}
	if !merged {
		t.Fatal("colliding cells never merged")
	}
	c := m.Cells()[0]
	if c.Peak < 2.6 || c.Peak > 2.8 {
		t.Fatalf("merged peak %g, want conserved sum 2.7", c.Peak)
	}
	if c.X < 28 || c.X > 42 {
		t.Fatalf("merged centre %g outside parents' span", c.X)
	}
}

func TestMergeCellsDisabledByDefault(t *testing.T) {
	m := mustModel(t, smallConfig())
	if err := m.InjectCell(Cell{X: 30, Y: 22, Radius: 4, Peak: 1, Life: 14400}); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 31, Y: 22, Radius: 4, Peak: 1, Life: 14400}); err != nil {
		t.Fatal(err)
	}
	m.Step()
	if len(m.Cells()) != 2 {
		t.Fatalf("cells merged with MergeEnabled=false: %d", len(m.Cells()))
	}
}

func TestMergeCellsChainCollapse(t *testing.T) {
	// Three mutually overlapping cells collapse to one in a single step.
	cfg := smallConfig()
	cfg.MergeEnabled = true
	m := mustModel(t, cfg)
	for _, x := range []float64{28, 31, 34} {
		if err := m.InjectCell(Cell{X: x, Y: 22, Radius: 4, Peak: 1, Life: 14400}); err != nil {
			t.Fatal(err)
		}
	}
	m.Step()
	if got := len(m.Cells()); got != 1 {
		t.Fatalf("chain of 3 overlapping cells -> %d cells, want 1", got)
	}
	if p := m.Cells()[0].Peak; p < 2.9 || p > 3.1 {
		t.Fatalf("merged peak %g, want 3", p)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	// A model saved mid-run and restored must continue bit-identically to
	// the uninterrupted run — including spontaneous genesis (PRNG state).
	cfg := smallConfig()
	cfg.SpawnRate = 6
	ref := mustModel(t, cfg)
	for i := 0; i < 30; i++ {
		ref.Step()
	}

	m := mustModel(t, cfg)
	for i := 0; i < 15; i++ {
		m.Step()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != 15 || restored.Time() != 15*cfg.Dt {
		t.Fatalf("restored bookkeeping: %d steps, %g s", restored.StepCount(), restored.Time())
	}
	for i := 0; i < 15; i++ {
		restored.Step()
	}
	if restored.QCloud().Sum() != ref.QCloud().Sum() {
		t.Fatalf("restored run diverged: %g vs %g", restored.QCloud().Sum(), ref.QCloud().Sum())
	}
	for i := range ref.QCloud().Data {
		if restored.QCloud().Data[i] != ref.QCloud().Data[i] {
			t.Fatalf("restored field differs at %d", i)
		}
	}
	if len(restored.Cells()) != len(ref.Cells()) {
		t.Fatal("restored cells differ")
	}
	// OLR is a diagnostic and must be consistent after load.
	for i := range ref.OLR().Data {
		if restored.OLR().Data[i] != ref.OLR().Data[i] {
			t.Fatal("restored OLR differs")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestMergeCellsPeakSaturates(t *testing.T) {
	// Repeated in-place renewals must not intensify without bound.
	cfg := smallConfig()
	cfg.MergeEnabled = true
	cfg.MergePeakCap = 3.5
	m := mustModel(t, cfg)
	for i := 0; i < 6; i++ {
		if err := m.InjectCell(Cell{X: 30, Y: 22, Radius: 4, Peak: 2.5, Life: 14400}); err != nil {
			t.Fatal(err)
		}
		m.Step()
	}
	cells := m.Cells()
	if len(cells) != 1 {
		t.Fatalf("renewals did not merge: %d cells", len(cells))
	}
	if cells[0].Peak > 3.5+1e-9 {
		t.Fatalf("merged peak %g exceeds cap 3.5", cells[0].Peak)
	}
}

func TestDiurnalCycleModulatesGenesis(t *testing.T) {
	// Afternoon convection must outpace pre-dawn convection when the
	// diurnal cycle is on, and not when it is off.
	count := func(amplitude float64) (day, night int) {
		cfg := smallConfig()
		cfg.SpawnRate = 20
		cfg.DiurnalAmplitude = amplitude
		cfg.DecayTau = 600 // keep the field cheap; we only count cells
		m := mustModel(t, cfg)
		prev := 0
		for i := 0; i < 3*720; i++ { // three simulated days at Dt=120
			m.Step()
			born := 0
			if n := len(m.Cells()); n > prev {
				born = n - prev
			}
			prev = len(m.Cells())
			hour := math.Mod(m.Time()/3600, 24)
			if hour >= 12 && hour < 18 {
				day += born
			} else if hour >= 0 && hour < 6 {
				night += born
			}
		}
		return day, night
	}
	day, night := count(1.0)
	if day <= night*2 {
		t.Fatalf("diurnal cycle weak: %d afternoon vs %d pre-dawn geneses", day, night)
	}
	dayFlat, nightFlat := count(0)
	if dayFlat == 0 || nightFlat == 0 {
		t.Fatal("flat cycle produced no geneses in a window")
	}
	ratio := float64(dayFlat) / float64(nightFlat)
	if ratio > 2 || ratio < 0.5 {
		t.Fatalf("flat cycle is not flat: %d vs %d", dayFlat, nightFlat)
	}
}
