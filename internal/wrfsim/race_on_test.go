//go:build race

package wrfsim

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions skip under it (instrumentation perturbs
// allocation accounting).
const raceEnabled = true
