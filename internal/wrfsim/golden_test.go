package wrfsim

import (
	"math"
	"testing"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// These golden tests hold the optimized step kernels to the pre-kernel
// implementations, reimplemented here verbatim as references: per-point
// Bilinear advection with a separate decay pass, and the fused 2D
// Gaussian exponential deposit. The advection kernel is bit-exact; the
// separable deposit rounds its two axis exponentials independently, so
// whole steps are compared at the 1e-12 equivalence tolerance the repo
// uses everywhere.

const goldenTol = 1e-12

// refDeposit is the pre-kernel Model.deposit.
func refDeposit(f *field.Field, cfg Config, c Cell, ratio int, origin geom.Point) {
	inten := c.Intensity() * cfg.Dt / 60
	if inten <= 0 {
		return
	}
	r := float64(ratio)
	cx := (c.X - float64(origin.X)) * r
	cy := (c.Y - float64(origin.Y)) * r
	rad := c.Radius * r
	x0 := max(0, int(cx-3*rad))
	x1 := min(f.NX-1, int(cx+3*rad)+1)
	y0 := max(0, int(cy-3*rad))
	y1 := min(f.NY-1, int(cy+3*rad)+1)
	inv := 1 / (2 * rad * rad)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			f.Add(x-0, y-0, inten*math.Exp(-(dx*dx+dy*dy)*inv))
		}
	}
}

// refAdvectDecay is the pre-kernel advection: per-point Bilinear sampling
// into a fresh field, then a separate decay pass.
func refAdvectDecay(q *field.Field, ux, vy, decay float64) *field.Field {
	next := field.New(q.NX, q.NY)
	for y := 0; y < next.NY; y++ {
		for x := 0; x < next.NX; x++ {
			next.Set(x, y, q.Bilinear(float64(x)-ux, float64(y)-vy))
		}
	}
	for i := range next.Data {
		next.Data[i] *= decay
	}
	return next
}

func goldenMaxDiff(a, b *field.Field) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func goldenCells() []Cell {
	// Spread out so merging never triggers and the reference need not
	// replicate mergeCells.
	return []Cell{
		{X: 40, Y: 30, VX: 0.001, VY: 0.0005, Radius: 6, Peak: 2.5, Life: 1e9},
		{X: 120, Y: 70, VX: -0.0008, VY: 0.0012, Radius: 4, Peak: 1.8, Life: 1e9},
		{X: 90, Y: 20, VX: 0.0005, VY: -0.0003, Radius: 8, Peak: 3.1, Life: 1e9},
	}
}

func TestModelStepMatchesReferencePhysics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnRate = 0
	cfg.MergeEnabled = false
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCells() {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}

	ref := m.QCloud().Clone()
	cells := append([]Cell(nil), goldenCells()...)
	dt := cfg.Dt
	decay := math.Exp(-dt / cfg.DecayTau)
	for step := 0; step < 20; step++ {
		m.Step()
		// Reference physics, pre-kernel order: lifecycle, deposit, advect,
		// decay.
		alive := cells[:0]
		for _, c := range cells {
			c.Age += dt
			c.X += c.VX * dt
			c.Y += c.VY * dt
			if c.Age < c.Life && c.X > -3*c.Radius && c.X < float64(cfg.NX)+3*c.Radius &&
				c.Y > -3*c.Radius && c.Y < float64(cfg.NY)+3*c.Radius {
				alive = append(alive, c)
			}
		}
		cells = alive
		for _, c := range cells {
			refDeposit(ref, cfg, c, 1, geom.Point{})
		}
		ref = refAdvectDecay(ref, cfg.FlowU*dt, cfg.FlowV*dt, decay)

		if d := goldenMaxDiff(m.QCloud(), ref); d > goldenTol {
			t.Fatalf("step %d: optimized model diverges from reference by %g (> %g)",
				step+1, d, goldenTol)
		}
	}
}

func TestNestStepMatchesReferencePhysics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnRate = 0
	cfg.MergeEnabled = false
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCells() {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m.Step()
	}
	region := geom.NewRect(30, 15, 50, 40)
	nest, err := m.SpawnNest(1, region)
	if err != nil {
		t.Fatal(err)
	}
	ref := field.Refine(m.QCloud(), region, NestRatio)

	dtFine := cfg.Dt / NestRatio
	ux := cfg.FlowU * dtFine * NestRatio
	vy := cfg.FlowV * dtFine * NestRatio
	decay := math.Exp(-dtFine / cfg.DecayTau)
	origin := geom.Point{X: region.X0, Y: region.Y0}
	for step := 0; step < 6; step++ {
		nest.Step(m)
		for s := 0; s < NestRatio; s++ {
			for _, c := range m.Cells() {
				scaled := c
				scaled.Peak = c.Peak / NestRatio
				refDeposit(ref, cfg, scaled, NestRatio, origin)
			}
			ref = refAdvectDecay(ref, ux, vy, decay)
		}
		if d := goldenMaxDiff(nest.QCloud(), ref); d > goldenTol {
			t.Fatalf("parent step %d: optimized nest diverges from reference by %g (> %g)",
				step+1, d, goldenTol)
		}
	}
}

func TestModelStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	cfg := DefaultConfig()
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 90, Y: 52, Radius: 5, Peak: 2, Life: 1e9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Step() // warm the double buffer and deposit scratch pool
	}
	if allocs := testing.AllocsPerRun(20, m.Step); allocs != 0 {
		t.Fatalf("steady-state Model.Step allocates %v objects per step, want 0", allocs)
	}
}

func TestNestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	cfg := DefaultConfig()
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 90, Y: 52, Radius: 5, Peak: 2, Life: 1e9}); err != nil {
		t.Fatal(err)
	}
	m.Step()
	nest, err := m.SpawnNest(1, geom.NewRect(70, 40, 40, 25))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nest.Step(m)
	}
	if allocs := testing.AllocsPerRun(20, func() { nest.Step(m) }); allocs != 0 {
		t.Fatalf("steady-state Nest.Step allocates %v objects per step, want 0", allocs)
	}
}

func TestMergeCellsKeepsDeterministicOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnRate = 0
	cfg.MergeEnabled = true
	build := func() *Model {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two overlapping pairs plus bystanders, deliberately placed so
		// swap-with-last scrambles slice order during compaction.
		for _, c := range []Cell{
			{X: 20, Y: 20, Radius: 5, Peak: 1, Life: 1e9},
			{X: 150, Y: 80, Radius: 5, Peak: 1, Life: 1e9},
			{X: 23, Y: 20, Radius: 5, Peak: 1, Life: 1e9},
			{X: 60, Y: 50, Radius: 3, Peak: 1, Life: 1e9},
			{X: 152, Y: 81, Radius: 5, Peak: 1, Life: 1e9},
		} {
			if err := m.InjectCell(c); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a, b := build(), build()
	for i := 0; i < 5; i++ {
		a.Step()
		b.Step()
	}
	ca, cb := a.Cells(), b.Cells()
	if len(ca) != 3 {
		t.Fatalf("expected 2 merges leaving 3 cells, got %d", len(ca))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("cell %d differs between identical runs: %+v vs %+v", i, ca[i], cb[i])
		}
	}
	for i := 1; i < len(ca); i++ {
		if compareCells(ca[i-1], ca[i]) > 0 {
			t.Fatalf("cells not in deterministic sorted order at %d: %+v > %+v",
				i, ca[i-1], ca[i])
		}
	}
}
