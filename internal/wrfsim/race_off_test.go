//go:build !race

package wrfsim

const raceEnabled = false
