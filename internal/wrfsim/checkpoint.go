package wrfsim

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the gob-serialized form of a Model. Every field of the
// simulation state is captured — including the PRNG state — so a restored
// model continues bit-identically to an uninterrupted run.
type checkpoint struct {
	Version int
	Cfg     Config
	QCloud  []float64
	Cells   []Cell
	RNG     uint64
	Time    float64
	Step    int
}

const checkpointVersion = 1

// Save writes a checkpoint of the model.
func (m *Model) Save(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		Cfg:     m.cfg,
		QCloud:  append([]float64(nil), m.qcloud.Data...),
		Cells:   append([]Cell(nil), m.cells...),
		RNG:     m.rng.State,
		Time:    m.time,
		Step:    m.step,
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("wrfsim: save checkpoint: %w", err)
	}
	return nil
}

// Load restores a model from a checkpoint written by Save.
func Load(r io.Reader) (*Model, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("wrfsim: load checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("wrfsim: unsupported checkpoint version %d", cp.Version)
	}
	// Bound the allocation implied by the decoded configuration before
	// trusting it (same guard as the split-file parser).
	if cp.Cfg.NX <= 0 || cp.Cfg.NY <= 0 || cp.Cfg.NX*cp.Cfg.NY > 1<<24 {
		return nil, fmt.Errorf("wrfsim: implausible checkpoint domain %dx%d", cp.Cfg.NX, cp.Cfg.NY)
	}
	m, err := NewModel(cp.Cfg)
	if err != nil {
		return nil, err
	}
	if len(cp.QCloud) != len(m.qcloud.Data) {
		return nil, fmt.Errorf("wrfsim: checkpoint field has %d samples for a %dx%d domain",
			len(cp.QCloud), cp.Cfg.NX, cp.Cfg.NY)
	}
	copy(m.qcloud.Data, cp.QCloud)
	m.cells = cp.Cells
	m.rng.State = cp.RNG
	m.time = cp.Time
	m.step = cp.Step
	m.updateOLR()
	return m, nil
}
