package wrfsim

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the gob-serialized form of a Model. Every field of the
// simulation state is captured — including the PRNG state — so a restored
// model continues bit-identically to an uninterrupted run.
type checkpoint struct {
	Version int
	Cfg     Config
	QCloud  []float64
	Cells   []Cell
	RNG     uint64
	Time    float64
	Step    int
}

const checkpointVersion = 1

// Save writes a checkpoint of the model.
func (m *Model) Save(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		Cfg:     m.cfg,
		QCloud:  append([]float64(nil), m.qcloud.Data...),
		Cells:   append([]Cell(nil), m.cells...),
		RNG:     m.rng.State,
		Time:    m.time,
		Step:    m.step,
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("wrfsim: save checkpoint: %w", err)
	}
	return nil
}

// Load restores a model from a checkpoint written by Save.
func Load(r io.Reader) (*Model, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("wrfsim: load checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("wrfsim: unsupported checkpoint version %d", cp.Version)
	}
	return RestoreModel(cp.Cfg, cp.QCloud, cp.Cells, cp.RNG, cp.Time, cp.Step)
}

// RNGState exposes the PRNG state for checkpointing.
func (m *Model) RNGState() uint64 { return m.rng.State }

// RestoreModel rebuilds a model from previously checkpointed state (the
// non-gob counterpart of Load, used by the binary checkpoint codec). It
// takes ownership of qcloud and cells.
func RestoreModel(cfg Config, qcloud []float64, cells []Cell, rngState uint64, simTime float64, step int) (*Model, error) {
	// Bound the allocation implied by the decoded configuration before
	// trusting it (same guard as the split-file parser).
	if cfg.NX <= 0 || cfg.NY <= 0 || cfg.NX*cfg.NY > 1<<24 {
		return nil, fmt.Errorf("wrfsim: implausible checkpoint domain %dx%d", cfg.NX, cfg.NY)
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	if len(qcloud) != len(m.qcloud.Data) {
		return nil, fmt.Errorf("wrfsim: checkpoint field has %d samples for a %dx%d domain",
			len(qcloud), cfg.NX, cfg.NY)
	}
	copy(m.qcloud.Data, qcloud)
	m.cells = cells
	m.rng.State = rngState
	m.time = simTime
	m.step = step
	m.updateOLR()
	return m, nil
}
