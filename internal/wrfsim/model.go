// Package wrfsim is the surrogate for the WRF weather model (v3.3.1 in the
// paper). It is not a weather forecast: it reproduces the *interfaces and
// dynamics class* the paper's framework consumes — a 2D parent domain that
// develops multiple transient, coherent regions of high cloud water mixing
// ratio (QCLOUD) with correspondingly low outgoing long-wave radiation
// (OLR), per-rank split-file output for the parallel data analysis
// algorithm, and 3×-resolution nested domains initialized by interpolation
// from the parent (§III, §IV).
//
// The physics is a semi-Lagrangian advection–decay equation for cloud
// water forced by a population of convective cells with a grow/peak/decay
// life cycle, drifting with the monsoon flow. Everything is seeded and
// deterministic.
package wrfsim

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/rng"
)

// Config describes a parent simulation domain.
type Config struct {
	NX, NY int     // grid points
	DX     float64 // grid spacing in km (paper: 12 km parent, 4 km nests)
	Dt     float64 // time step in seconds

	// Flow is the ambient wind (grid cells per second) advecting cloud
	// water; monsoon westerlies by default.
	FlowU, FlowV float64

	// DecayTau is the e-folding decay time of cloud water in seconds.
	DecayTau float64

	// OLRClear is the clear-sky outgoing long-wave radiation (W/m²) and
	// OLRPerQ the reduction per unit of column cloud water. The paper's
	// detection threshold is OLR ≤ 200 (Gu & Zhang [10]).
	OLRClear float64
	OLRPerQ  float64
	OLRMin   float64

	// SpawnRate is the expected number of spontaneous convective-cell
	// geneses per simulated hour (0 disables spontaneous genesis; scripted
	// scenarios inject cells explicitly).
	SpawnRate float64
	// DiurnalAmplitude in [0, 1] modulates spontaneous genesis with the
	// diurnal cycle of tropical convection (peak in the afternoon, minimum
	// before dawn): the expectation is scaled by
	// 1 + A·sin(2π·(t−9h)/24h). Zero disables the cycle.
	DiurnalAmplitude float64

	// MergeEnabled lets drifting cells that overlap coalesce into one
	// stronger system — the clustering behaviour the paper's introduction
	// describes ("some clouds may move to different regions and cluster
	// with other clouds").
	MergeEnabled bool
	// MergePeakCap saturates the combined source strength of a merged
	// system (deep convection cannot intensify without bound). Zero means
	// the default cap.
	MergePeakCap float64

	Seed int64
}

// DefaultConfig returns a laptop-scale Indian-region configuration: the
// 60°E–120°E, 5°N–40°N domain of §V-B at a coarsened grid so tests run
// fast, with the paper's 12 km spacing semantics preserved in DX.
func DefaultConfig() Config {
	return Config{
		NX: 180, NY: 105, // 60°x35° at 1/3° — scaled stand-in for 12 km
		DX:        12,
		Dt:        120, // PDA cadence: the paper analyzes every 2 minutes
		FlowU:     2e-3,
		FlowV:     5e-4,
		DecayTau:  5400,
		OLRClear:  280,
		OLRPerQ:   60,
		OLRMin:    90,
		SpawnRate: 2.5,
		Seed:      2005,
	}
}

// Cell is one convective system: a Gaussian cloud-water source with a
// sinusoidal life cycle, drifting with its own velocity.
type Cell struct {
	X, Y   float64 // center, in grid coordinates
	VX, VY float64 // drift, grid cells per second
	Radius float64 // Gaussian radius in grid cells
	Peak   float64 // peak source strength (QCLOUD units per step)
	Age    float64 // seconds since genesis
	Life   float64 // total lifetime in seconds
}

// Intensity returns the cell's current source strength: a half-sine
// envelope over its lifetime (genesis → peak → decay).
func (c Cell) Intensity() float64 {
	if c.Age < 0 || c.Age >= c.Life {
		return 0
	}
	return c.Peak * math.Sin(math.Pi*c.Age/c.Life)
}

// Model is the running parent simulation.
type Model struct {
	cfg    Config
	qcloud *field.Field
	olr    *field.Field
	// scratch is the advection double buffer: each step advects qcloud
	// into scratch and swaps the two, so steady-state stepping allocates
	// nothing. It is derived state and never checkpointed.
	scratch *field.Field
	cells   []Cell
	rng     *rng.SplitMix64
	time    float64
	step    int
}

// NewModel builds a model from cfg. It returns an error on non-physical
// configurations.
func NewModel(cfg Config) (*Model, error) {
	if cfg.NX <= 0 || cfg.NY <= 0 {
		return nil, fmt.Errorf("wrfsim: invalid domain %dx%d", cfg.NX, cfg.NY)
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("wrfsim: invalid time step %g", cfg.Dt)
	}
	if cfg.DecayTau <= 0 {
		return nil, fmt.Errorf("wrfsim: invalid decay time %g", cfg.DecayTau)
	}
	m := &Model{
		cfg:     cfg,
		qcloud:  field.New(cfg.NX, cfg.NY),
		olr:     field.New(cfg.NX, cfg.NY),
		scratch: field.New(cfg.NX, cfg.NY),
		rng:     rng.New(uint64(cfg.Seed)),
	}
	m.updateOLR()
	return m, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Time returns the simulated seconds since start.
func (m *Model) Time() float64 { return m.time }

// StepCount returns the number of completed steps.
func (m *Model) StepCount() int { return m.step }

// QCloud returns the live cloud-water field (do not mutate).
func (m *Model) QCloud() *field.Field { return m.qcloud }

// OLR returns the live outgoing long-wave radiation field (do not mutate).
func (m *Model) OLR() *field.Field { return m.olr }

// Cells returns a copy of the live convective cells.
func (m *Model) Cells() []Cell { return append([]Cell(nil), m.cells...) }

// AppendCells appends the live convective cells to buf and returns the
// result — the allocation-free counterpart of Cells for callers that keep
// a scratch slice across steps.
func (m *Model) AppendCells(buf []Cell) []Cell { return append(buf, m.cells...) }

// InjectCell adds a convective cell (scripted scenarios use this for
// reproducible genesis; the Mumbai-2005-like scenario is built this way).
func (m *Model) InjectCell(c Cell) error {
	if c.Radius <= 0 || c.Peak <= 0 || c.Life <= 0 {
		return fmt.Errorf("wrfsim: non-physical cell %+v", c)
	}
	m.cells = append(m.cells, c)
	return nil
}

// Step advances the simulation by one Dt: cell life cycles and drift,
// spontaneous genesis, source deposition, semi-Lagrangian advection,
// exponential decay, and the OLR diagnostic.
func (m *Model) Step() {
	dt := m.cfg.Dt

	// Cell life cycle and drift.
	alive := m.cells[:0]
	for _, c := range m.cells {
		c.Age += dt
		c.X += c.VX * dt
		c.Y += c.VY * dt
		if c.Age < c.Life && c.X > -3*c.Radius && c.X < float64(m.cfg.NX)+3*c.Radius &&
			c.Y > -3*c.Radius && c.Y < float64(m.cfg.NY)+3*c.Radius {
			alive = append(alive, c)
		}
	}
	m.cells = alive

	if m.cfg.MergeEnabled {
		m.mergeCells()
	}

	// Spontaneous genesis (Poisson with expectation SpawnRate per hour,
	// optionally modulated by the diurnal convection cycle).
	if m.cfg.SpawnRate > 0 {
		expect := m.cfg.SpawnRate * dt / 3600
		if a := m.cfg.DiurnalAmplitude; a > 0 {
			const day = 86400.0
			phase := 2 * math.Pi * (m.time - 9*3600) / day
			expect *= 1 + a*math.Sin(phase)
			if expect < 0 {
				expect = 0
			}
		}
		for expect > 0 {
			if m.rng.Float64() < expect {
				m.cells = append(m.cells, m.randomCell())
			}
			expect--
		}
	}

	// Source deposition.
	for _, c := range m.cells {
		m.deposit(m.qcloud, c, 1, geom.Point{})
	}

	// Fused semi-Lagrangian advection + exponential decay on the ambient
	// flow, into the double buffer (no steady-state allocation).
	field.AdvectDecay(m.scratch, m.qcloud, field.AdvectSpec{
		UX: m.cfg.FlowU * dt, VY: m.cfg.FlowV * dt,
		GNX: m.cfg.NX, GNY: m.cfg.NY,
		Decay: math.Exp(-dt / m.cfg.DecayTau),
	})
	m.qcloud, m.scratch = m.scratch, m.qcloud

	m.updateOLR()
	m.time += dt
	m.step++
}

// deposit adds the cell's Gaussian source to f at the given resolution
// ratio relative to the parent grid, with f's origin at parent-grid point
// origin. The parent field uses ratio 1 and origin (0,0); nests pass their
// region origin and refinement ratio.
func (m *Model) deposit(f *field.Field, c Cell, ratio int, origin geom.Point) {
	inten := c.Intensity() * m.cfg.Dt / 60 // per-minute normalization
	if inten <= 0 {
		return
	}
	r := float64(ratio)
	cx := (c.X - float64(origin.X)) * r
	cy := (c.Y - float64(origin.Y)) * r
	rad := c.Radius * r
	x0 := max(0, int(cx-3*rad))
	x1 := min(f.NX-1, int(cx+3*rad)+1)
	y0 := max(0, int(cy-3*rad))
	y1 := min(f.NY-1, int(cy+3*rad)+1)
	f.AddSeparableGaussian(cx, cy, inten, 1/(2*rad*rad), x0, y0, x1, y1, 0, 0)
}

func (m *Model) updateOLR() {
	for i, q := range m.qcloud.Data {
		olr := m.cfg.OLRClear - m.cfg.OLRPerQ*q
		if olr < m.cfg.OLRMin {
			olr = m.cfg.OLRMin
		}
		m.olr.Data[i] = olr
	}
}

// defaultMergePeakCap bounds merged-system intensification when the
// configuration leaves MergePeakCap unset.
const defaultMergePeakCap = 6.0

// mergeCells coalesces pairs of cells whose cores overlap (centres closer
// than the sum of their radii) into a single system at the
// intensity-weighted centroid, conserving the combined source strength up
// to a saturation cap (deep convection cannot intensify without bound;
// without the cap, a system repeatedly renewed in place — a cyclone core —
// would grow exponentially). The merged system inherits the longer
// remaining lifetime, so clustering prolongs organized convection as
// observed in tropical systems.
func (m *Model) mergeCells() {
	merged := false
	for i := 0; i < len(m.cells); i++ {
		for j := i + 1; j < len(m.cells); j++ {
			a, b := m.cells[i], m.cells[j]
			dx, dy := a.X-b.X, a.Y-b.Y
			if dx*dx+dy*dy > (a.Radius+b.Radius)*(a.Radius+b.Radius) {
				continue
			}
			ia, ib := a.Intensity(), b.Intensity()
			wa, wb := ia+1e-12, ib+1e-12
			peakCap := m.cfg.MergePeakCap
			if peakCap <= 0 {
				peakCap = defaultMergePeakCap
			}
			fused := Cell{
				X:      (a.X*wa + b.X*wb) / (wa + wb),
				Y:      (a.Y*wa + b.Y*wb) / (wa + wb),
				VX:     (a.VX*wa + b.VX*wb) / (wa + wb),
				VY:     (a.VY*wa + b.VY*wb) / (wa + wb),
				Radius: math.Max(a.Radius, b.Radius) * 1.15,
				Peak:   math.Min(a.Peak+b.Peak, peakCap),
			}
			// Keep the phase of the longer-remaining life so the merged
			// system continues smoothly.
			remA, remB := a.Life-a.Age, b.Life-b.Age
			if remA >= remB {
				fused.Age, fused.Life = a.Age, a.Life
			} else {
				fused.Age, fused.Life = b.Age, b.Life
			}
			m.cells[i] = fused
			// Swap-with-last removal: O(1) instead of the O(n) shift of
			// append(cells[:j], cells[j+1:]...), which made heavy
			// clustering O(n³) worst case across a step.
			last := len(m.cells) - 1
			m.cells[j] = m.cells[last]
			m.cells = m.cells[:last]
			merged = true
			j--
		}
	}
	if merged {
		// Swap removal scrambles slice order, and cell order is the
		// deposit summation order: restore a deterministic order so seeded
		// runs stay reproducible across platforms and runs.
		slices.SortFunc(m.cells, compareCells)
	}
}

// compareCells is a total order over cell state used to keep the cell
// slice deterministic after merge compaction.
func compareCells(a, b Cell) int {
	if c := cmp.Compare(a.X, b.X); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Y, b.Y); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Age, b.Age); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Life, b.Life); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Peak, b.Peak); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Radius, b.Radius); c != 0 {
		return c
	}
	if c := cmp.Compare(a.VX, b.VX); c != 0 {
		return c
	}
	return cmp.Compare(a.VY, b.VY)
}

func (m *Model) randomCell() Cell {
	return Cell{
		X:      m.rng.Float64() * float64(m.cfg.NX),
		Y:      m.rng.Float64() * float64(m.cfg.NY),
		VX:     m.cfg.FlowU * (0.5 + m.rng.Float64()),
		VY:     m.cfg.FlowV * (0.5 + m.rng.Float64()),
		Radius: 3 + m.rng.Float64()*6,
		Peak:   0.5 + m.rng.Float64()*1.5,
		Life:   (1 + m.rng.Float64()*3) * 3600,
	}
}
