package wrfsim

import (
	"fmt"
	"math"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
)

// ParallelModel runs the parent simulation distributed over the ranks of
// an MPI world, the way WRF itself runs: the domain is block-decomposed
// over the Px×Py process grid, each rank steps its block locally, and the
// semi-Lagrangian advection reads up to haloWidth cells into the
// neighbours' blocks, exchanged point-to-point each step. Split files
// come straight from rank-local state — no gather of the global field is
// ever needed, which is exactly why the paper's analysis pipeline works
// on split files.
//
// The parallel model is bit-equivalent to the serial Model stepped with
// the same configuration and cell schedule (verified in tests): the
// physics is deterministic and cells are global state replicated on every
// rank.
type ParallelModel struct {
	cfg   Config
	pg    geom.Grid
	world *mpi.World
	dist  geom.BlockDist

	// Per-rank state, indexed by rank. Only rank r's goroutine touches
	// local[r] between collectives.
	local []*rankState

	cells []Cell // global, stepped identically on the driver
	// cellScratch is the per-step snapshot handed to rank goroutines,
	// reused across steps (Run is synchronous, so the buffer is idle again
	// by the time Step returns).
	cellScratch []Cell
	time        float64
	step        int
}

type rankState struct {
	block  geom.Rect // owned region in domain coordinates
	qcloud *field.Field
	olr    *field.Field
	// next and ext are the advection double buffer and the halo-extended
	// source field, reused every step so steady-state stepping allocates
	// nothing. sendBuf is the halo-strip staging buffer (Rank.Send copies
	// payloads, so one buffer serves all neighbours). None carry state
	// between steps and none are checkpointed.
	next    *field.Field
	ext     *field.Field
	sendBuf []float64
	// recvBuf is the halo-strip receive buffer (Rank.RecvInto fills it and
	// recycles the transport buffer, so the exchange allocates nothing).
	recvBuf []float64
	// nbrs is the rank's fixed 8-neighbourhood, precomputed at
	// construction (the parent decomposition never changes).
	nbrs []neighbour
}

// neighbour is one halo-exchange partner direction.
type neighbour struct {
	dx, dy int
}

// haloWidth is the stencil reach of one advection step in cells. The
// ambient flow moves well under one cell per 2-minute step, so a width of
// 2 is conservative.
const haloWidth = 2

// NewParallelModel builds a distributed model over a freshly created
// world of pg.Size() ranks using the given (possibly nil) network for the
// virtual clock.
func NewParallelModel(cfg Config, pg geom.Grid, world *mpi.World) (*ParallelModel, error) {
	if cfg.NX <= 0 || cfg.NY <= 0 || cfg.Dt <= 0 || cfg.DecayTau <= 0 {
		return nil, fmt.Errorf("wrfsim: invalid configuration")
	}
	if cfg.SpawnRate != 0 {
		return nil, fmt.Errorf("wrfsim: parallel model requires a scripted cell schedule (SpawnRate must be 0)")
	}
	if world.Size() != pg.Size() {
		return nil, fmt.Errorf("wrfsim: world of %d ranks for process grid of %d", world.Size(), pg.Size())
	}
	if pg.Px > cfg.NX || pg.Py > cfg.NY {
		return nil, fmt.Errorf("wrfsim: process grid %dx%d larger than domain %dx%d",
			pg.Px, pg.Py, cfg.NX, cfg.NY)
	}
	pm := &ParallelModel{
		cfg:   cfg,
		pg:    pg,
		world: world,
		dist:  geom.NewBlockDist(cfg.NX, cfg.NY, pg.Bounds()),
		local: make([]*rankState, pg.Size()),
	}
	for r := 0; r < pg.Size(); r++ {
		blk := pm.dist.BlockOf(pg.Coord(r))
		if blk.Width() < haloWidth || blk.Height() < haloWidth {
			return nil, fmt.Errorf("wrfsim: rank %d block %v narrower than the %d-cell halo; use fewer ranks",
				r, blk, haloWidth)
		}
		st := &rankState{
			block:  blk,
			qcloud: field.New(blk.Width(), blk.Height()),
			olr:    field.New(blk.Width(), blk.Height()),
			next:   field.New(blk.Width(), blk.Height()),
			ext:    field.New(blk.Width()+2*haloWidth, blk.Height()+2*haloWidth),
		}
		st.olr.Fill(cfg.OLRClear)
		me := pg.Coord(r)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if pg.Bounds().Contains(geom.Point{X: me.X + dx, Y: me.Y + dy}) {
					st.nbrs = append(st.nbrs, neighbour{dx, dy})
				}
			}
		}
		pm.local[r] = st
	}
	return pm, nil
}

// InjectCell adds a convective cell; cells are global state.
func (pm *ParallelModel) InjectCell(c Cell) error {
	if c.Radius <= 0 || c.Peak <= 0 || c.Life <= 0 {
		return fmt.Errorf("wrfsim: non-physical cell %+v", c)
	}
	pm.cells = append(pm.cells, c)
	return nil
}

// Time returns simulated seconds since start.
func (pm *ParallelModel) Time() float64 { return pm.time }

// StepCount returns completed steps.
func (pm *ParallelModel) StepCount() int { return pm.step }

// Step advances every rank by one Dt: cell update (replicated), local
// deposit, halo exchange, local semi-Lagrangian advection + decay, local
// OLR diagnostic.
func (pm *ParallelModel) Step() error {
	// Cell life cycle (identical to the serial model, driver-side).
	dt := pm.cfg.Dt
	alive := pm.cells[:0]
	for _, c := range pm.cells {
		c.Age += dt
		c.X += c.VX * dt
		c.Y += c.VY * dt
		if c.Age < c.Life && c.X > -3*c.Radius && c.X < float64(pm.cfg.NX)+3*c.Radius &&
			c.Y > -3*c.Radius && c.Y < float64(pm.cfg.NY)+3*c.Radius {
			alive = append(alive, c)
		}
	}
	pm.cells = alive
	pm.cellScratch = append(pm.cellScratch[:0], pm.cells...)
	cells := pm.cellScratch

	err := pm.world.Run(func(r *mpi.Rank) {
		st := pm.local[r.ID()]
		pm.rankStep(r, st, cells)
	})
	if err != nil {
		return err
	}
	pm.time += dt
	pm.step++
	return nil
}

// rankStep is one rank's work for one time step.
func (pm *ParallelModel) rankStep(r *mpi.Rank, st *rankState, cells []Cell) {
	cfg := pm.cfg
	// Deposit the global cells into the local block (serial-model
	// deposit restricted to owned cells).
	for _, c := range cells {
		depositInto(st.qcloud, st.block, c, cfg.Dt)
	}
	r.Compute(float64(st.block.Area()) * 5e-9)

	// Build the halo-extended field: interior from the local block,
	// borders received from the up-to-8 neighbours.
	ext := pm.exchangeHalo(r, st)

	// Semi-Lagrangian advection reading from the extended field, plus
	// decay, fused into one pass. Departure points clamp to the global
	// domain border exactly like the serial model's Bilinear clamp, then
	// shift into extended-field coordinates (halo origin offset).
	field.AdvectDecay(st.next, ext, field.AdvectSpec{
		UX: cfg.FlowU * cfg.Dt, VY: cfg.FlowV * cfg.Dt,
		GX0: st.block.X0, GY0: st.block.Y0,
		GNX: cfg.NX, GNY: cfg.NY,
		OffX: haloWidth, OffY: haloWidth,
		Decay: math.Exp(-cfg.Dt / cfg.DecayTau),
	})
	st.qcloud, st.next = st.next, st.qcloud

	// OLR diagnostic.
	for i, q := range st.qcloud.Data {
		olr := cfg.OLRClear - cfg.OLRPerQ*q
		if olr < cfg.OLRMin {
			olr = cfg.OLRMin
		}
		st.olr.Data[i] = olr
	}
	r.Compute(float64(st.block.Area()) * 2e-8)
}

// exchangeHalo sends border strips to the eight neighbours and assembles
// the halo-extended local field. Cells outside the global domain remain
// at the clamped border values' defaults (they are never read thanks to
// the departure-point clamping above, but are filled with the nearest
// interior value for safety).
func (pm *ParallelModel) exchangeHalo(r *mpi.Rank, st *rankState) *field.Field {
	me := pm.pg.Coord(r.ID())
	w, h := st.block.Width(), st.block.Height()
	// Reuse the rank's extended buffer; zero it first so cells no strip
	// rewrites (the outside-domain corners) stay at their fresh-field value.
	ext := st.ext
	ext.Fill(0)
	// Interior copy.
	ext.SetSub(geom.NewRect(haloWidth, haloWidth, w, h), st.qcloud)

	// Post sends first (non-blocking mailbox semantics), then receive.
	// The payload for neighbour (dx,dy) is the strip of our block that
	// lies within haloWidth of the shared boundary. Rank.Send copies the
	// payload, so one staging buffer serves every neighbour in turn.
	for _, n := range st.nbrs {
		strip := pm.ownStrip(st, n.dx, n.dy)
		payload := st.sendBuf[:0]
		strip.Cells(func(p geom.Point) {
			payload = append(payload, st.qcloud.At(p.X-st.block.X0, p.Y-st.block.Y0))
		})
		st.sendBuf = payload
		r.Send(pm.pg.Rank(geom.Point{X: me.X + n.dx, Y: me.Y + n.dy}), pm.step*16+tag(n.dx, n.dy), payload)
	}
	for _, n := range st.nbrs {
		from := geom.Point{X: me.X + n.dx, Y: me.Y + n.dy}
		// The neighbour sent its strip facing us: its (dx,dy) towards us is
		// (-dx,-dy). RecvInto reuses the rank's receive buffer and recycles
		// the transport buffer.
		payload := r.RecvInto(pm.pg.Rank(from), pm.step*16+tag(-n.dx, -n.dy), st.recvBuf)
		st.recvBuf = payload
		their := pm.local[pm.pg.Rank(from)].block
		strip := stripOf(their, -n.dx, -n.dy)
		if strip.Area() != len(payload) {
			panic(fmt.Sprintf("halo payload %d != strip %v", len(payload), strip))
		}
		i := 0
		strip.Cells(func(p geom.Point) {
			ex := p.X - st.block.X0 + haloWidth
			ey := p.Y - st.block.Y0 + haloWidth
			if ex >= 0 && ex < ext.NX && ey >= 0 && ey < ext.NY {
				ext.Set(ex, ey, payload[i])
			}
			i++
		})
	}
	return ext
}

// ownStrip returns the region of our block that the neighbour in
// direction (dx, dy) needs as halo.
func (pm *ParallelModel) ownStrip(st *rankState, dx, dy int) geom.Rect {
	return stripOf(st.block, dx, dy)
}

// stripOf returns the part of block within haloWidth of its boundary
// facing direction (dx, dy).
func stripOf(block geom.Rect, dx, dy int) geom.Rect {
	out := block
	switch dx {
	case -1:
		out.X1 = min(out.X1, out.X0+haloWidth)
	case 1:
		out.X0 = max(out.X0, out.X1-haloWidth)
	}
	switch dy {
	case -1:
		out.Y1 = min(out.Y1, out.Y0+haloWidth)
	case 1:
		out.Y0 = max(out.Y0, out.Y1-haloWidth)
	}
	return out
}

// tag encodes a neighbour direction into a message tag in [0, 9).
func tag(dx, dy int) int { return (dy+1)*3 + (dx + 1) }

// depositInto adds the cell's Gaussian source restricted to the owned
// block (same maths as the serial Model.deposit at ratio 1).
func depositInto(f *field.Field, block geom.Rect, c Cell, dt float64) {
	inten := c.Intensity() * dt / 60
	if inten <= 0 {
		return
	}
	rad := c.Radius
	x0 := max(block.X0, int(c.X-3*rad))
	x1 := min(block.X1-1, int(c.X+3*rad)+1)
	y0 := max(block.Y0, int(c.Y-3*rad))
	y1 := min(block.Y1-1, int(c.Y+3*rad)+1)
	f.AddSeparableGaussian(c.X, c.Y, inten, 1/(2*rad*rad), x0, y0, x1, y1, block.X0, block.Y0)
}

// Splits returns every rank's current state as split files, directly from
// rank-local storage.
func (pm *ParallelModel) Splits() []Split {
	out := make([]Split, pm.pg.Size())
	for r := 0; r < pm.pg.Size(); r++ {
		st := pm.local[r]
		out[r] = Split{
			Rank:   r,
			Px:     pm.pg.Px,
			Py:     pm.pg.Py,
			Bounds: st.block,
			Step:   pm.step,
			QCloud: st.qcloud.Clone(),
			OLR:    st.olr.Clone(),
		}
	}
	return out
}

// Gather reassembles the global QCLOUD field (testing/visualization only;
// the production pipeline never needs it).
func (pm *ParallelModel) Gather() *field.Field {
	out := field.New(pm.cfg.NX, pm.cfg.NY)
	for _, st := range pm.local {
		out.SetSub(st.block, st.qcloud)
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
