package wrfsim

import (
	"math"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/topology"
)

func parallelWorld(t testing.TB, n int) *mpi.World {
	t.Helper()
	px, py := geom.NearSquareFactors(n)
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(n), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(n, mpi.Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testCells() []Cell {
	return []Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 14400},
		{X: 70, Y: 50, VX: -1.5e-3, VY: 3e-4, Radius: 4, Peak: 2.0, Life: 10800},
		{X: 45, Y: 30, Radius: 3, Peak: 1.2, Life: 7200},
	}
}

// TestParallelModelMatchesSerial is the core distributed-substrate check:
// the block-decomposed, halo-exchanging model must reproduce the serial
// model exactly (the physics per cell is a pure function of the previous
// global state, so even bitwise equality holds).
func TestParallelModelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0

	serial, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testCells() {
		if err := serial.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}

	for _, ranks := range []int{1, 4, 12, 48} {
		px, py := geom.NearSquareFactors(ranks)
		pg := geom.NewGrid(px, py)
		pm, err := NewParallelModel(cfg, pg, parallelWorld(t, ranks))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for _, c := range testCells() {
			if err := pm.InjectCell(c); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 25; s++ {
			if err := pm.Step(); err != nil {
				t.Fatalf("ranks=%d step %d: %v", ranks, s, err)
			}
		}
		// Reference run (fresh serial each time to compare at the same step).
		ref, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range testCells() {
			if err := ref.InjectCell(c); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 25; s++ {
			ref.Step()
		}
		got := pm.Gather()
		want := ref.QCloud()
		var worst float64
		for i := range want.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-12 {
			t.Fatalf("ranks=%d: parallel model deviates from serial by %g", ranks, worst)
		}
	}
}

func TestParallelModelSplitsMatchSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	pg := geom.NewGrid(8, 6)
	pm, err := NewParallelModel(cfg, pg, parallelWorld(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testCells() {
		if err := pm.InjectCell(c); err != nil {
			t.Fatal(err)
		}
		if err := serial.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 20; s++ {
		if err := pm.Step(); err != nil {
			t.Fatal(err)
		}
		serial.Step()
	}
	want, err := serial.Splits(pg)
	if err != nil {
		t.Fatal(err)
	}
	got := pm.Splits()
	if len(got) != len(want) {
		t.Fatalf("split counts differ: %d vs %d", len(got), len(want))
	}
	for r := range want {
		if got[r].Bounds != want[r].Bounds || got[r].Rank != want[r].Rank {
			t.Fatalf("rank %d split header mismatch", r)
		}
		for i := range want[r].QCloud.Data {
			if math.Abs(got[r].QCloud.Data[i]-want[r].QCloud.Data[i]) > 1e-12 {
				t.Fatalf("rank %d QCLOUD mismatch at %d", r, i)
			}
			if math.Abs(got[r].OLR.Data[i]-want[r].OLR.Data[i]) > 1e-12 {
				t.Fatalf("rank %d OLR mismatch at %d", r, i)
			}
		}
	}
}

func TestParallelModelValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	pg := geom.NewGrid(8, 6)

	if _, err := NewParallelModel(cfg, pg, parallelWorld(t, 24)); err == nil {
		t.Error("world/grid size mismatch accepted")
	}
	spawning := cfg
	spawning.SpawnRate = 1
	if _, err := NewParallelModel(spawning, pg, parallelWorld(t, 48)); err == nil {
		t.Error("spontaneous spawning accepted (breaks determinism across decompositions)")
	}
	tiny := cfg
	tiny.NX, tiny.NY = 8, 6
	if _, err := NewParallelModel(tiny, pg, parallelWorld(t, 48)); err == nil {
		t.Error("sub-halo blocks accepted")
	}
	pm, err := NewParallelModel(cfg, pg, parallelWorld(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.InjectCell(Cell{}); err == nil {
		t.Error("non-physical cell accepted")
	}
}

func TestParallelModelClockAdvances(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	pg := geom.NewGrid(4, 3)
	pm, err := NewParallelModel(cfg, pg, parallelWorld(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.InjectCell(testCells()[0]); err != nil {
		t.Fatal(err)
	}
	if err := pm.Step(); err != nil {
		t.Fatal(err)
	}
	if pm.StepCount() != 1 || pm.Time() != cfg.Dt {
		t.Fatalf("step bookkeeping wrong: %d steps, %g s", pm.StepCount(), pm.Time())
	}
}
