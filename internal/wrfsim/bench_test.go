package wrfsim

import (
	"fmt"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/topology"
)

func benchModel(b *testing.B, nx, ny int) *Model {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = nx, ny
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: float64(nx) / 2, Y: float64(ny) / 2, Radius: 5, Peak: 2, Life: 1e9}); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkModelStep(b *testing.B) {
	m := benchModel(b, 180, 105)
	m.Step() // warm the double buffer and deposit scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkNestStep(b *testing.B) {
	m := benchModel(b, 180, 105)
	for i := 0; i < 10; i++ {
		m.Step()
	}
	n, err := m.SpawnNest(1, geom.NewRect(70, 40, 40, 30))
	if err != nil {
		b.Fatal(err)
	}
	n.Step(m) // warm the double buffer and deposit scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(m)
	}
}

func BenchmarkSplits(b *testing.B) {
	m := benchModel(b, 180, 105)
	m.Step()
	pg := geom.NewGrid(18, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Splits(pg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchParallelModel(b *testing.B, px, py int) (*ParallelModel, *mpi.World) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	pg := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(pg, topology.TorusDimsFor(pg.Size()), topology.DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpi.NewWorld(pg.Size(), mpi.Config{Net: net})
	if err != nil {
		b.Fatal(err)
	}
	pm, err := NewParallelModel(cfg, pg, w)
	if err != nil {
		b.Fatal(err)
	}
	if err := pm.InjectCell(Cell{X: 48, Y: 36, Radius: 5, Peak: 2, Life: 1e9}); err != nil {
		b.Fatal(err)
	}
	return pm, w
}

// BenchmarkParallelModelStep measures one distributed parent step: deposit,
// 8-neighbour halo exchange (the mailbox hot path), fused advection, OLR.
func BenchmarkParallelModelStep(b *testing.B) {
	for _, ranks := range [][2]int{{4, 3}, {6, 4}} {
		b.Run(fmt.Sprintf("ranks=%d", ranks[0]*ranks[1]), func(b *testing.B) {
			pm, _ := benchParallelModel(b, ranks[0], ranks[1])
			if err := pm.Step(); err != nil { // warm per-rank buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pm.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHaloExchange isolates the 8-neighbour halo exchange (strip
// staging, point-to-point sends, receive + scatter into the extended
// field) from the rest of the distributed step, so the mailbox and
// receive-path cost is measured without the compute kernels.
func BenchmarkHaloExchange(b *testing.B) {
	pm, w := benchParallelModel(b, 6, 4)
	if err := pm.Step(); err != nil { // warm per-rank buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(r *mpi.Rank) {
			pm.exchangeHalo(r, pm.local[r.ID()])
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRedistribute ping-pongs a distributed nest between two processor
// sub-rectangles, measuring the block-intersection Alltoallv of §IV.
func BenchmarkRedistribute(b *testing.B) {
	pm, w := benchParallelModel(b, 6, 4)
	if err := pm.Step(); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.Step()
	pg := geom.NewGrid(6, 4)
	n, err := m.NewParallelNest(1, geom.NewRect(20, 16, 40, 30), pg, geom.NewRect(0, 0, 3, 4))
	if err != nil {
		b.Fatal(err)
	}
	a := geom.NewRect(0, 0, 3, 4)
	bRect := geom.NewRect(3, 0, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := bRect
		if i%2 == 1 {
			dst = a
		}
		if _, err := n.Redistribute(w, dst); err != nil {
			b.Fatal(err)
		}
	}
}
