package wrfsim

import (
	"testing"

	"nestdiff/internal/geom"
)

func benchModel(b *testing.B, nx, ny int) *Model {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = nx, ny
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: float64(nx) / 2, Y: float64(ny) / 2, Radius: 5, Peak: 2, Life: 1e9}); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkModelStep(b *testing.B) {
	m := benchModel(b, 180, 105)
	m.Step() // warm the double buffer and deposit scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkNestStep(b *testing.B) {
	m := benchModel(b, 180, 105)
	for i := 0; i < 10; i++ {
		m.Step()
	}
	n, err := m.SpawnNest(1, geom.NewRect(70, 40, 40, 30))
	if err != nil {
		b.Fatal(err)
	}
	n.Step(m) // warm the double buffer and deposit scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(m)
	}
}

func BenchmarkSplits(b *testing.B) {
	m := benchModel(b, 180, 105)
	m.Step()
	pg := geom.NewGrid(18, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Splits(pg); err != nil {
			b.Fatal(err)
		}
	}
}
