package wrfsim

import (
	"math"
	"testing"

	"nestdiff/internal/geom"
)

// setupNestPair builds a serial nest and a distributed nest over the same
// region of the same model state.
func setupNestPair(t *testing.T, procs geom.Rect) (*Model, *Nest, *ParallelNest, geom.Grid) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testCells() {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		m.Step()
	}
	region := geom.NewRect(12, 10, 24, 20) // fine 72x60
	serial, err := m.SpawnNest(1, region)
	if err != nil {
		t.Fatal(err)
	}
	pg := geom.NewGrid(8, 6)
	par, err := m.NewParallelNest(1, region, pg, procs)
	if err != nil {
		t.Fatal(err)
	}
	return m, serial, par, pg
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestParallelNestMatchesSerial(t *testing.T) {
	for _, procs := range []geom.Rect{
		geom.NewRect(0, 0, 1, 1), // single rank
		geom.NewRect(0, 0, 4, 3),
		geom.NewRect(2, 1, 5, 4), // offset sub-grid
	} {
		m, serial, par, pg := setupNestPair(t, procs)
		w := parallelWorld(t, pg.Size())
		for i := 0; i < 8; i++ {
			m.Step()
			serial.Step(m)
			if err := par.Step(w, m.Config(), m.Cells()); err != nil {
				t.Fatalf("procs %v: %v", procs, err)
			}
		}
		if par.StepCount() != serial.StepCount() {
			t.Fatalf("substep counts differ: %d vs %d", par.StepCount(), serial.StepCount())
		}
		got := par.Gather()
		if d := maxAbsDiff(got.Data, serial.QCloud().Data); d > 1e-12 {
			t.Fatalf("procs %v: distributed nest deviates from serial by %g", procs, d)
		}
	}
}

func TestParallelNestRedistributeMidRun(t *testing.T) {
	// The paper's full runtime story: step distributed, reallocate to a
	// different sub-grid with one Alltoallv, keep stepping — and stay
	// bit-identical to a serial nest that never moved.
	m, serial, par, pg := setupNestPair(t, geom.NewRect(0, 0, 4, 3))
	w := parallelWorld(t, pg.Size())
	for i := 0; i < 4; i++ {
		m.Step()
		serial.Step(m)
		if err := par.Step(w, m.Config(), m.Cells()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed, err := par.Redistribute(w, geom.NewRect(4, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("redistribution to a disjoint sub-grid cost nothing")
	}
	if par.Procs() != geom.NewRect(4, 2, 3, 4) {
		t.Fatalf("sub-grid not updated: %v", par.Procs())
	}
	for i := 0; i < 4; i++ {
		m.Step()
		serial.Step(m)
		if err := par.Step(w, m.Config(), m.Cells()); err != nil {
			t.Fatal(err)
		}
	}
	if d := maxAbsDiff(par.Gather().Data, serial.QCloud().Data); d > 1e-12 {
		t.Fatalf("post-redistribution nest deviates from serial by %g", d)
	}
}

func TestParallelNestRedistributeOverlapCheaper(t *testing.T) {
	// Diffusion's whole point, measured on the executed nest exchange: an
	// anchored grow beats a disjoint move.
	_, _, parGrow, pg := setupNestPair(t, geom.NewRect(0, 0, 4, 3))
	w := parallelWorld(t, pg.Size())
	tGrow, err := parGrow.Redistribute(w, geom.NewRect(0, 0, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, _, parFar, _ := setupNestPair(t, geom.NewRect(0, 0, 4, 3))
	tFar, err := parFar.Redistribute(w, geom.NewRect(4, 3, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if tGrow >= tFar {
		t.Fatalf("anchored grow (%g) not cheaper than disjoint move (%g)", tGrow, tFar)
	}
}

func TestParallelNestValidation(t *testing.T) {
	m, _, par, pg := setupNestPair(t, geom.NewRect(0, 0, 4, 3))
	// Region/processor validation on creation.
	if _, err := m.NewParallelNest(2, geom.Rect{}, pg, geom.NewRect(0, 0, 2, 2)); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := m.NewParallelNest(2, geom.NewRect(0, 0, 10, 10), pg, geom.NewRect(7, 5, 4, 4)); err == nil {
		t.Error("out-of-grid sub-rectangle accepted")
	}
	// Too many ranks for the fine extents (blocks below halo width).
	if _, err := m.NewParallelNest(2, geom.NewRect(0, 0, 2, 2), pg, geom.NewRect(0, 0, 8, 6)); err == nil {
		t.Error("sub-halo blocks accepted")
	}
	// World size mismatch.
	wrong := parallelWorld(t, 12)
	if err := par.Step(wrong, m.Config(), nil); err == nil {
		t.Error("world size mismatch accepted by Step")
	}
	if _, err := par.Redistribute(wrong, geom.NewRect(0, 0, 2, 2)); err == nil {
		t.Error("world size mismatch accepted by Redistribute")
	}
	w := parallelWorld(t, pg.Size())
	if _, err := par.Redistribute(w, geom.Rect{}); err == nil {
		t.Error("empty new sub-rectangle accepted")
	}
	// A decomposition whose blocks fall below the halo width: a tiny nest
	// spread over many ranks.
	tiny, err := m.NewParallelNest(3, geom.NewRect(0, 0, 4, 4), pg, geom.NewRect(0, 0, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Redistribute(w, geom.NewRect(0, 0, 8, 6)); err == nil {
		t.Error("sub-halo new decomposition accepted")
	}
}

func TestParallelNestIdentityRedistributionIsFree(t *testing.T) {
	_, _, par, pg := setupNestPair(t, geom.NewRect(1, 1, 4, 3))
	w := parallelWorld(t, pg.Size())
	before := par.Gather()
	elapsed, err := par.Redistribute(w, geom.NewRect(1, 1, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("identity redistribution cost %g", elapsed)
	}
	if d := maxAbsDiff(par.Gather().Data, before.Data); d != 0 {
		t.Fatal("identity redistribution corrupted data")
	}
}
