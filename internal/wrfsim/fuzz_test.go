package wrfsim

import (
	"bytes"
	"testing"

	"nestdiff/internal/geom"
)

// FuzzReadSplit hardens the split-file parser: arbitrary bytes must yield
// an error or a structurally valid split, never a panic or an implausible
// allocation.
func FuzzReadSplit(f *testing.F) {
	// Seed with a valid split and a few mutations.
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 24, 18
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		f.Fatal(err)
	}
	m.Step()
	splits, err := m.Splits(geom.NewGrid(2, 2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSplit(&buf, splits[0]); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("NSDF garbage"))
	mutated := append([]byte(nil), valid...)
	mutated[8] ^= 0xff // corrupt an extent
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSplit(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Structural sanity of anything the parser accepts.
		if s.Bounds.Empty() {
			t.Fatal("accepted split with empty bounds")
		}
		if s.QCloud.NX != s.Bounds.Width() || s.QCloud.NY != s.Bounds.Height() {
			t.Fatal("accepted split with mismatched field extents")
		}
		if len(s.QCloud.Data) != len(s.OLR.Data) {
			t.Fatal("accepted split with mismatched payloads")
		}
	})
}

// FuzzCheckpointLoad hardens the checkpoint decoder.
func FuzzCheckpointLoad(f *testing.F) {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY = 16, 12
	cfg.SpawnRate = 0
	m, err := NewModel(cfg)
	if err != nil {
		f.Fatal(err)
	}
	m.Step()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be steppable.
		m.Step()
	})
}
