package wrfsim

import (
	"fmt"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// RestoreNest reconstructs a serial nest from checkpointed state: the
// region it covers, its fine-resolution field, and its substep counter.
// The restored nest continues bit-identically to the one that was saved.
func RestoreNest(id int, region geom.Rect, fine *field.Field, steps int) (*Nest, error) {
	if region.Empty() {
		return nil, fmt.Errorf("wrfsim: empty nest region")
	}
	if fine == nil || fine.NX != region.Width()*NestRatio || fine.NY != region.Height()*NestRatio {
		return nil, fmt.Errorf("wrfsim: nest %d fine field does not match region %v at ratio %d",
			id, region, NestRatio)
	}
	if steps < 0 {
		return nil, fmt.Errorf("wrfsim: negative substep count %d", steps)
	}
	return &Nest{
		ID:      id,
		Region:  region,
		qcloud:  fine.Clone(),
		scratch: field.New(fine.NX, fine.NY),
		steps:   steps,
	}, nil
}

// RestoreParallelNest reconstructs a distributed nest from checkpointed
// state: the gathered fine field is re-scattered over the saved processor
// sub-rectangle, and the substep counter is restored so halo-exchange tags
// continue their sequence.
func RestoreParallelNest(id int, region geom.Rect, pg geom.Grid, procs geom.Rect, fine *field.Field, steps int) (*ParallelNest, error) {
	if region.Empty() {
		return nil, fmt.Errorf("wrfsim: empty nest region")
	}
	if procs.Empty() || !pg.Bounds().ContainsRect(procs) {
		return nil, fmt.Errorf("wrfsim: invalid processor sub-rectangle %v", procs)
	}
	if fine == nil || fine.NX != region.Width()*NestRatio || fine.NY != region.Height()*NestRatio {
		return nil, fmt.Errorf("wrfsim: nest %d fine field does not match region %v at ratio %d",
			id, region, NestRatio)
	}
	if steps < 0 {
		return nil, fmt.Errorf("wrfsim: negative substep count %d", steps)
	}
	n := &ParallelNest{
		ID:     id,
		Region: region,
		pg:     pg,
		nx:     fine.NX,
		ny:     fine.NY,
		steps:  steps,
	}
	if err := n.scatter(fine, procs); err != nil {
		return nil, err
	}
	return n, nil
}
