package wrfsim

import (
	"fmt"
	"math"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// NestRatio is the refinement ratio of nested domains: "the resolutions of
// these nested simulations are thrice that of the parent simulation" (§IV).
const NestRatio = 3

// Nest is a high-resolution nested simulation over a region of interest of
// the parent domain. Its initial cloud-water field is interpolated from
// the parent (the paper's on-the-fly spawn path), and it steps with
// NestRatio substeps per parent step on a NestRatio× finer grid.
type Nest struct {
	ID     int
	Region geom.Rect // region of interest, in parent grid points
	qcloud *field.Field
	// scratch is the advection double buffer: each substep advects qcloud
	// into it and swaps the two, so steady-state stepping allocates nothing.
	// It carries no state between substeps and is never checkpointed.
	scratch *field.Field
	steps   int
}

// SpawnNest creates a nest over the given parent region, initializing it
// by bilinear interpolation of the parent's current state.
func (m *Model) SpawnNest(id int, region geom.Rect) (*Nest, error) {
	if region.Empty() {
		return nil, fmt.Errorf("wrfsim: empty nest region")
	}
	if !m.qcloud.Bounds().ContainsRect(region) {
		return nil, fmt.Errorf("wrfsim: nest region %v outside parent %dx%d",
			region, m.cfg.NX, m.cfg.NY)
	}
	qc := field.Refine(m.qcloud, region, NestRatio)
	return &Nest{
		ID:      id,
		Region:  region,
		qcloud:  qc,
		scratch: field.New(qc.NX, qc.NY),
	}, nil
}

// QCloud returns the nest's live fine-resolution cloud-water field.
func (n *Nest) QCloud() *field.Field { return n.qcloud }

// Size returns the nest's fine-grid extents.
func (n *Nest) Size() (nx, ny int) { return n.qcloud.NX, n.qcloud.NY }

// StepCount returns the number of completed fine substeps.
func (n *Nest) StepCount() int { return n.steps }

// Step advances the nest through NestRatio fine substeps, mirroring the
// parent physics (same cells, same flow) at NestRatio× the resolution and
// NestRatio× smaller time step. Call it once per parent Step.
func (n *Nest) Step(m *Model) {
	dtFine := m.cfg.Dt / NestRatio
	ux := m.cfg.FlowU * dtFine * NestRatio // flow in fine cells per substep
	vy := m.cfg.FlowV * dtFine * NestRatio
	decay := math.Exp(-dtFine / m.cfg.DecayTau)
	for s := 0; s < NestRatio; s++ {
		for _, c := range m.cells {
			// The fine grid deposits a third of the parent's per-step source
			// per substep.
			scaled := c
			scaled.Peak = c.Peak / NestRatio
			m.deposit(n.qcloud, scaled, NestRatio, geom.Point{X: n.Region.X0, Y: n.Region.Y0})
		}
		field.AdvectDecay(n.scratch, n.qcloud, field.AdvectSpec{
			UX: ux, VY: vy,
			GNX: n.qcloud.NX, GNY: n.qcloud.NY,
			Decay: decay,
		})
		n.qcloud, n.scratch = n.scratch, n.qcloud
		n.steps++
	}
}

// Feedback coarsens the nest's state back onto the parent domain,
// replacing the parent's cloud water under the nest region (two-way
// nesting).
func (n *Nest) Feedback(m *Model) {
	coarse := field.Coarsen(n.qcloud, NestRatio)
	m.qcloud.SetSub(n.Region, coarse)
	m.updateOLR()
}
