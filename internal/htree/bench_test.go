package htree

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{5, 9, 20} {
		b.Run(fmt.Sprintf("leaves=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			leaves := make([]Leaf, n)
			for i := range leaves {
				leaves[i] = Leaf{ID: i + 1, Weight: 0.01 + rng.Float64()}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(leaves); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCloneAndReorganize(b *testing.B) {
	leaves := make([]Leaf, 9)
	rng := rand.New(rand.NewSource(5))
	for i := range leaves {
		leaves[i] = Leaf{ID: i + 1, Weight: 0.01 + rng.Float64()}
	}
	tree, err := Build(leaves)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tree.Clone()
		if _, err := t.MarkFree(3); err != nil {
			b.Fatal(err)
		}
		free := t.MergeFreeSiblings()
		if err := t.FillLeaf(free[0], 100, 0.3); err != nil {
			b.Fatal(err)
		}
		t.UpdateInternalWeights()
	}
}

func BenchmarkFlattenUnflatten(b *testing.B) {
	leaves := make([]Leaf, 9)
	rng := rand.New(rand.NewSource(6))
	for i := range leaves {
		leaves[i] = Leaf{ID: i + 1, Weight: 0.01 + rng.Float64()}
	}
	tree, err := Build(leaves)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unflatten(tree.Flatten()); err != nil {
			b.Fatal(err)
		}
	}
}
