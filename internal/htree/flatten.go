package htree

import "fmt"

// FlatNode is the serializable form of a tree node: children are indices
// into the flat slice (-1 for none). Used by checkpointing — the
// diffusion strategy's state *is* its tree, so restoring a tracker
// requires restoring the tree exactly.
type FlatNode struct {
	ID          int
	Weight      float64
	Free        bool
	Left, Right int
	Order       int
}

// Flatten serializes the tree in preorder. An empty tree flattens to nil.
func (t *Tree) Flatten() []FlatNode {
	var out []FlatNode
	var walk func(n *Node) int
	walk = func(n *Node) int {
		idx := len(out)
		out = append(out, FlatNode{
			ID: n.ID, Weight: n.Weight, Free: n.Free,
			Left: -1, Right: -1, Order: n.order,
		})
		if !n.IsLeaf() {
			out[idx].Left = walk(n.Left)
			out[idx].Right = walk(n.Right)
		}
		return idx
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// Unflatten reconstructs a tree from Flatten's output.
func Unflatten(flat []FlatNode) (*Tree, error) {
	t := &Tree{}
	if len(flat) == 0 {
		return t, nil
	}
	nodes := make([]*Node, len(flat))
	maxOrder := 0
	for i, f := range flat {
		nodes[i] = &Node{ID: f.ID, Weight: f.Weight, Free: f.Free, order: f.Order}
		if f.Order > maxOrder {
			maxOrder = f.Order
		}
	}
	for i, f := range flat {
		if (f.Left < 0) != (f.Right < 0) {
			return nil, fmt.Errorf("htree: node %d has exactly one child", i)
		}
		if f.Left < 0 {
			continue
		}
		if f.Left >= len(flat) || f.Right >= len(flat) || f.Left == i || f.Right == i {
			return nil, fmt.Errorf("htree: node %d has invalid child indices %d, %d", i, f.Left, f.Right)
		}
		nodes[i].Left = nodes[f.Left]
		nodes[i].Right = nodes[f.Right]
		nodes[f.Left].Parent = nodes[i]
		nodes[f.Right].Parent = nodes[i]
	}
	t.Root = nodes[0]
	t.nextOrder = maxOrder + 1
	if t.Root.Parent != nil {
		return nil, fmt.Errorf("htree: flat node 0 is not the root")
	}
	if err := t.Validate(false); err != nil {
		return nil, err
	}
	return t, nil
}
