package htree

import (
	"math/rand"
	"testing"
)

func mustBuild(t *testing.T, leaves []Leaf) *Tree {
	t.Helper()
	tree, err := Build(leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func paperLeaves() []Leaf {
	// Fig. 2(a): nests 1..5 with execution-time ratios .1:.1:.2:.25:.35.
	return []Leaf{{1, 0.1}, {2, 0.1}, {3, 0.2}, {4, 0.25}, {5, 0.35}}
}

func TestBuildPaperFig2Shape(t *testing.T) {
	// Expected Huffman tree of Fig. 2(a): ((1 2) 3) on the left under 0.4,
	// (4 5) on the right under 0.6.
	tree := mustBuild(t, paperLeaves())
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	want := "(((1:0.10 2:0.10) 3:0.20) (4:0.25 5:0.35))"
	if got := tree.String(); got != want {
		t.Fatalf("tree = %s, want %s", got, want)
	}
	if w := tree.Root.Weight; w < 0.999 || w > 1.001 {
		t.Fatalf("root weight = %g, want 1.0", w)
	}
}

func TestBuildFig4Shape(t *testing.T) {
	// Fig. 4(a): nests 3, 5, 6 with weights .27:.42:.31 → 5 alone on one
	// side, (3 6) merged under 0.58.
	tree := mustBuild(t, []Leaf{{3, 0.27}, {5, 0.42}, {6, 0.31}})
	want := "(5:0.42 (3:0.27 6:0.31))"
	if got := tree.String(); got != want {
		t.Fatalf("tree = %s, want %s", got, want)
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	tree := mustBuild(t, []Leaf{{7, 1.0}})
	if !tree.Root.IsLeaf() || tree.Root.ID != 7 {
		t.Fatalf("single-leaf tree = %s", tree)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("expected error for empty leaves")
	}
	if _, err := Build([]Leaf{{1, 0}}); err == nil {
		t.Error("expected error for zero weight")
	}
	if _, err := Build([]Leaf{{1, 0.5}, {1, 0.5}}); err == nil {
		t.Error("expected error for duplicate IDs")
	}
}

func TestBuildDeterministicTies(t *testing.T) {
	leaves := []Leaf{{1, 0.25}, {2, 0.25}, {3, 0.25}, {4, 0.25}}
	a := mustBuild(t, leaves).String()
	for i := 0; i < 10; i++ {
		if b := mustBuild(t, leaves).String(); b != a {
			t.Fatalf("non-deterministic build: %s vs %s", a, b)
		}
	}
}

func TestLeavesOrder(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	var ids []int
	for _, l := range tree.Leaves() {
		ids = append(ids, l.ID)
	}
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("leaf order = %v, want %v", ids, want)
		}
	}
}

func TestFindLeafAndSibling(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	l4 := tree.FindLeaf(4)
	if l4 == nil || l4.ID != 4 {
		t.Fatal("FindLeaf(4) failed")
	}
	sib := l4.Sibling()
	if sib == nil || sib.ID != 5 {
		t.Fatalf("sibling of 4 = %v, want leaf 5", sib)
	}
	if tree.Root.Sibling() != nil {
		t.Fatal("root must have no sibling")
	}
	if tree.FindLeaf(99) != nil {
		t.Fatal("FindLeaf(99) should be nil")
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	cp := tree.Clone()
	if cp.String() != tree.String() {
		t.Fatalf("clone differs: %s vs %s", cp, tree)
	}
	if err := cp.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not touch the original.
	if _, err := cp.MarkFree(3); err != nil {
		t.Fatal(err)
	}
	if tree.FindLeaf(3) == nil {
		t.Fatal("original tree mutated by clone edit")
	}
}

func TestMarkFreeAndMerge(t *testing.T) {
	// Fig. 8(a): deleting nests 1, 2, 4 from the Fig. 2 tree merges the
	// free slots of 1 and 2 into a single empty node.
	tree := mustBuild(t, paperLeaves())
	for _, id := range []int{1, 2, 4} {
		if _, err := tree.MarkFree(id); err != nil {
			t.Fatal(err)
		}
	}
	free := tree.MergeFreeSiblings()
	if len(free) != 2 {
		t.Fatalf("free slots after merge = %d, want 2 (1+2 merged, 4)", len(free))
	}
	if got, want := tree.String(), "((_ 3:0.20) (_ 5:0.35))"; got != want {
		t.Fatalf("tree = %s, want %s", got, want)
	}
	if err := tree.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestMarkFreeMissing(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	if _, err := tree.MarkFree(42); err == nil {
		t.Fatal("expected error for missing leaf")
	}
}

func TestFillLeaf(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	n, err := tree.MarkFree(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.FillLeaf(n, 6, 0.31); err != nil {
		t.Fatal(err)
	}
	tree.UpdateInternalWeights()
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tree.FindLeaf(6) == nil {
		t.Fatal("leaf 6 not present after fill")
	}
	// Filling a non-free node must fail.
	if err := tree.FillLeaf(tree.FindLeaf(3), 7, 0.1); err == nil {
		t.Fatal("expected error filling non-free node")
	}
}

func TestFillSubtree(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	n, err := tree.MarkFree(4)
	if err != nil {
		t.Fatal(err)
	}
	sub := mustBuild(t, []Leaf{{10, 0.1}, {11, 0.2}})
	if err := tree.FillSubtree(n, sub); err != nil {
		t.Fatal(err)
	}
	tree.UpdateInternalWeights()
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tree.FindLeaf(10) == nil || tree.FindLeaf(11) == nil {
		t.Fatal("grafted leaves missing")
	}
}

func TestFillSubtreeAtRoot(t *testing.T) {
	tree := mustBuild(t, []Leaf{{1, 1}})
	n, err := tree.MarkFree(1)
	if err != nil {
		t.Fatal(err)
	}
	sub := mustBuild(t, []Leaf{{2, 0.5}, {3, 0.5}})
	if err := tree.FillSubtree(n, sub); err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() || tree.Root.Parent != nil {
		t.Fatal("root graft broken")
	}
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestSplice(t *testing.T) {
	// Fig. 8(c): after inserting nest 6, the remaining free slot (old nest
	// 4's position... actually the merged 1+2 slot) is removed, leaving
	// (3 6) and 5 under the root.
	tree := mustBuild(t, paperLeaves())
	for _, id := range []int{1, 2, 4} {
		if _, err := tree.MarkFree(id); err != nil {
			t.Fatal(err)
		}
	}
	free := tree.MergeFreeSiblings()
	// Fill the slot whose sibling is 3 (weight 0.27 is closest to 0.31).
	var slot34 *Node
	for _, f := range free {
		if s := f.Sibling(); s != nil && s.ID == 3 {
			slot34 = f
		}
	}
	if slot34 == nil {
		t.Fatal("no free slot with sibling 3")
	}
	if err := tree.FillLeaf(slot34, 6, 0.31); err != nil {
		t.Fatal(err)
	}
	for _, f := range free {
		if f.Free {
			if err := tree.Splice(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree.UpdateInternalWeights()
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Structural expectations: exactly leaves {3, 5, 6}, no free slots.
	var ids []int
	for _, l := range tree.Leaves() {
		if l.Free {
			t.Fatal("free slot survived splice")
		}
		ids = append(ids, l.ID)
	}
	if len(ids) != 3 {
		t.Fatalf("leaves = %v", ids)
	}
}

func TestSpliceRootLeaf(t *testing.T) {
	tree := mustBuild(t, []Leaf{{1, 1}})
	n, err := tree.MarkFree(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Splice(n); err != nil {
		t.Fatal(err)
	}
	if tree.Root != nil {
		t.Fatal("splicing the last node should empty the tree")
	}
}

func TestUpdateInternalWeights(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	tree.FindLeaf(3).Weight = 0.27
	tree.FindLeaf(5).Weight = 0.42
	tree.UpdateInternalWeights()
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	want := 0.1 + 0.1 + 0.27 + 0.25 + 0.42
	if got := tree.Root.Weight; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("root weight = %g, want %g", got, want)
	}
}

// Property: Huffman on random weights always yields a valid tree whose
// root weight equals the leaf-weight sum and whose leaf set is preserved.
func TestBuildRandomProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(12)
		leaves := make([]Leaf, n)
		sum := 0.0
		for i := range leaves {
			w := 0.01 + r.Float64()
			leaves[i] = Leaf{ID: i + 1, Weight: w}
			sum += w
		}
		tree := mustBuild(t, leaves)
		if err := tree.Validate(true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := tree.Root.Weight; got < sum-1e-9 || got > sum+1e-9 {
			t.Fatalf("trial %d: root weight %g != sum %g", trial, got, sum)
		}
		got := tree.Leaves()
		if len(got) != n {
			t.Fatalf("trial %d: %d leaves, want %d", trial, len(got), n)
		}
		seen := make(map[int]bool)
		for _, l := range got {
			seen[l.ID] = true
		}
		for i := 1; i <= n; i++ {
			if !seen[i] {
				t.Fatalf("trial %d: leaf %d missing", trial, i)
			}
		}
	}
}

// Property: Huffman depth of a leaf is anti-monotone in weight — the
// heaviest leaf is at minimal depth.
func TestHeaviestLeafShallowest(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	depth := func(n *Node) int {
		d := 0
		for n.Parent != nil {
			n = n.Parent
			d++
		}
		return d
	}
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(10)
		leaves := make([]Leaf, n)
		for i := range leaves {
			leaves[i] = Leaf{ID: i + 1, Weight: 0.01 + r.Float64()}
		}
		tree := mustBuild(t, leaves)
		var heaviest, lightest *Node
		for _, l := range tree.Leaves() {
			if heaviest == nil || l.Weight > heaviest.Weight {
				heaviest = l
			}
			if lightest == nil || l.Weight < lightest.Weight {
				lightest = l
			}
		}
		if depth(heaviest) > depth(lightest) {
			t.Fatalf("trial %d: heaviest leaf deeper than lightest", trial)
		}
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		leaves := make([]Leaf, n)
		for i := range leaves {
			leaves[i] = Leaf{ID: i + 1, Weight: 0.01 + r.Float64()}
		}
		tree := mustBuild(t, leaves)
		back, err := Unflatten(tree.Flatten())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.String() != tree.String() {
			t.Fatalf("trial %d: round trip %s != %s", trial, back, tree)
		}
		if err := back.Validate(true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The order counter must survive so later grafts stay deterministic.
		if back.NextOrder() != tree.NextOrder() {
			t.Fatalf("trial %d: nextOrder %d != %d", trial, back.NextOrder(), tree.NextOrder())
		}
	}
}

func TestFlattenEmptyTree(t *testing.T) {
	empty := &Tree{}
	if got := empty.Flatten(); got != nil {
		t.Fatalf("empty tree flattens to %v", got)
	}
	back, err := Unflatten(nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root != nil {
		t.Fatal("unflattened empty tree has a root")
	}
}

func TestFlattenPreservesFreeSlots(t *testing.T) {
	tree := mustBuild(t, paperLeaves())
	if _, err := tree.MarkFree(4); err != nil {
		t.Fatal(err)
	}
	back, err := Unflatten(tree.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != tree.String() {
		t.Fatalf("free slot lost: %s vs %s", back, tree)
	}
}

func TestUnflattenRejectsCorrupt(t *testing.T) {
	cases := [][]FlatNode{
		{{ID: -1, Left: 1, Right: -1}},                  // one child
		{{ID: -1, Left: 1, Right: 5}, {ID: 1}},          // out of range
		{{ID: -1, Left: 0, Right: 1}, {ID: 1}},          // self child
		{{ID: -1, Left: 1, Right: 2}, {ID: 1}, {ID: 1}}, // duplicate IDs
	}
	for i, c := range cases {
		if _, err := Unflatten(c); err == nil {
			t.Errorf("case %d: corrupt encoding accepted", i)
		}
	}
}
