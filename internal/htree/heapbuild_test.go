package htree

import (
	"math/rand"
	"sort"
	"testing"
)

// referenceBuild is the pre-heap O(n²) selection-sort construction, kept
// verbatim as the behavioural reference: the heap-based Build must produce
// identical trees on every input.
func referenceBuild(leaves []Leaf) (*Tree, error) {
	t := &Tree{}
	queue := make([]*Node, 0, len(leaves))
	for _, l := range leaves {
		n := t.newNode()
		n.ID = l.ID
		n.Weight = l.Weight
		queue = append(queue, n)
	}
	for len(queue) > 1 {
		sort.SliceStable(queue, func(i, j int) bool {
			a, b := queue[i], queue[j]
			if a.Weight != b.Weight {
				return a.Weight < b.Weight
			}
			if ai, bi := a.IsLeaf(), b.IsLeaf(); ai != bi {
				return bi // internal node first
			}
			return a.order < b.order
		})
		a, b := queue[0], queue[1]
		parent := t.newNode()
		parent.Weight = a.Weight + b.Weight
		parent.Left, parent.Right = a, b
		a.Parent, b.Parent = parent, parent
		queue = append([]*Node{parent}, queue[2:]...)
	}
	t.Root = queue[0]
	return t, nil
}

// TestBuildMatchesSelectionSortReference checks heap-vs-reference identity
// on the paper fixtures and on randomized tie-heavy inputs (weights drawn
// from a tiny set so equal-weight merges dominate, which is where the
// deterministic tie-breaking has to hold).
func TestBuildMatchesSelectionSortReference(t *testing.T) {
	check := func(name string, leaves []Leaf) {
		t.Helper()
		want, err := referenceBuild(leaves)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		got, err := Build(leaves)
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s:\n heap build %s\n reference  %s", name, got, want)
		}
		if err := got.Validate(true); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	check("paper-fig2", paperLeaves())
	check("fig4", []Leaf{{3, 0.27}, {5, 0.42}, {6, 0.31}})
	check("all-ties", []Leaf{{1, 0.25}, {2, 0.25}, {3, 0.25}, {4, 0.25}})

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(14)
		leaves := make([]Leaf, n)
		for i := range leaves {
			leaves[i] = Leaf{ID: i + 1, Weight: float64(1+rng.Intn(6)) / 6}
		}
		check("random", leaves)
	}
}
