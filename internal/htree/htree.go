// Package htree implements the weighted binary trees that drive processor
// allocation in the paper: classic Huffman construction over nest weights
// (the predicted execution-time ratios, after Malakar et al. [1]) plus the
// structural editing operations — marking leaves free, merging adjacent
// free slots, replacing a free slot with a leaf or subtree, and splicing
// out surplus slots — that the tree-based hierarchical diffusion algorithm
// (Algorithm 3) performs instead of rebuilding the tree from scratch.
package htree

import (
	"container/heap"
	"fmt"
	"strings"
)

// Leaf is one nest entering tree construction.
type Leaf struct {
	ID     int     // nest identifier, unique within a tree
	Weight float64 // predicted execution-time ratio (> 0)
}

// Node is a tree node. Leaves carry a nest ID; internal nodes always have
// exactly two children. A leaf marked Free is an empty slot left behind by
// a deleted nest, available as an insertion point.
type Node struct {
	ID          int // nest ID for leaves; -1 for internal nodes and free slots
	Weight      float64
	Left, Right *Node
	Parent      *Node
	Free        bool
	order       int // creation sequence, used for deterministic tie-breaks
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Sibling returns the other child of n's parent, or nil for the root.
func (n *Node) Sibling() *Node {
	if n.Parent == nil {
		return nil
	}
	if n.Parent.Left == n {
		return n.Parent.Right
	}
	return n.Parent.Left
}

// Tree is a weighted binary tree over nests. The zero value is an empty
// tree ready for Build.
type Tree struct {
	Root      *Node
	nextOrder int
}

func (t *Tree) newNode() *Node {
	n := &Node{ID: -1, order: t.nextOrder}
	t.nextOrder++
	return n
}

// Build constructs a Huffman tree over the given leaves: the two lightest
// nodes are repeatedly merged, with ties broken by insertion order so that
// construction is deterministic. The lighter of the two merged nodes
// becomes the left child (which the partitioner maps to the top/left
// sub-rectangle, reproducing Table I). Build returns an error if leaves is
// empty, a weight is not positive, or an ID repeats.
func Build(leaves []Leaf) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("htree: no leaves")
	}
	t := &Tree{}
	seen := make(map[int]bool, len(leaves))
	queue := make([]*Node, 0, len(leaves))
	for _, l := range leaves {
		if l.Weight <= 0 {
			return nil, fmt.Errorf("htree: leaf %d has non-positive weight %g", l.ID, l.Weight)
		}
		if seen[l.ID] {
			return nil, fmt.Errorf("htree: duplicate leaf ID %d", l.ID)
		}
		seen[l.ID] = true
		n := t.newNode()
		n.ID = l.ID
		n.Weight = l.Weight
		queue = append(queue, n)
	}
	// Repeatedly merge the two minima of a heap, O(n log n). The heap
	// order is total — (weight, internal-before-leaf, creation order),
	// with creation order unique — so the two nodes popped here are
	// exactly the two the old selection-sort construction picked, and the
	// resulting trees are identical (ties prefer already-merged nodes,
	// then insertion order, reproducing the layout of Fig. 2(a)/Table I).
	h := nodeHeap(queue)
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*Node)
		b := heap.Pop(&h).(*Node)
		parent := t.newNode()
		parent.Weight = a.Weight + b.Weight
		parent.Left, parent.Right = a, b
		a.Parent, b.Parent = parent, parent
		heap.Push(&h, parent)
	}
	t.Root = h[0]
	return t, nil
}

// nodeHeap is the construction priority queue. A node's leaf-ness is fixed
// before it enters the heap, so the ordering never changes under it.
type nodeHeap []*Node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	if ai, bi := a.IsLeaf(), b.IsLeaf(); ai != bi {
		return bi // internal node first
	}
	return a.order < b.order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*Node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return n
}

// Leaves returns the leaves of t in left-to-right order, including free
// slots.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// FindLeaf returns the non-free leaf carrying the given nest ID, or nil.
func (t *Tree) FindLeaf(id int) *Node {
	for _, l := range t.Leaves() {
		if !l.Free && l.ID == id {
			return l
		}
	}
	return nil
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	out := &Tree{nextOrder: t.nextOrder}
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		m := &Node{ID: n.ID, Weight: n.Weight, Free: n.Free, order: n.order}
		m.Left = cp(n.Left)
		m.Right = cp(n.Right)
		if m.Left != nil {
			m.Left.Parent = m
		}
		if m.Right != nil {
			m.Right.Parent = m
		}
		return m
	}
	out.Root = cp(t.Root)
	return out
}

// MarkFree marks the leaf carrying id as a free slot and returns it. It is
// an error if the leaf does not exist.
func (t *Tree) MarkFree(id int) (*Node, error) {
	l := t.FindLeaf(id)
	if l == nil {
		return nil, fmt.Errorf("htree: no leaf with ID %d", id)
	}
	l.Free = true
	l.ID = -1
	l.Weight = 0
	return l, nil
}

// MergeFreeSiblings repeatedly collapses pairs of sibling free slots into a
// single free slot on their parent ("deleted nodes 1, 2 have been combined
// as one empty node" — Fig. 8a). It returns the surviving free slots in
// left-to-right order.
func (t *Tree) MergeFreeSiblings() []*Node {
	for {
		merged := false
		for _, l := range t.Leaves() {
			if !l.Free {
				continue
			}
			sib := l.Sibling()
			if sib == nil || !sib.Free || !sib.IsLeaf() {
				continue
			}
			p := l.Parent
			p.Left, p.Right = nil, nil
			p.Free = true
			p.ID = -1
			p.Weight = 0
			merged = true
			break
		}
		if !merged {
			break
		}
	}
	var free []*Node
	for _, l := range t.Leaves() {
		if l.Free {
			free = append(free, l)
		}
	}
	return free
}

// FillLeaf turns the free slot n into a leaf for nest id with the given
// weight.
func (t *Tree) FillLeaf(n *Node, id int, weight float64) error {
	if !n.Free || !n.IsLeaf() {
		return fmt.Errorf("htree: node is not a free slot")
	}
	n.Free = false
	n.ID = id
	n.Weight = weight
	return nil
}

// FillSubtree replaces the free slot n with the root of sub, grafting it
// into the same position.
func (t *Tree) FillSubtree(n *Node, sub *Tree) error {
	if !n.Free || !n.IsLeaf() {
		return fmt.Errorf("htree: node is not a free slot")
	}
	if sub == nil || sub.Root == nil {
		return fmt.Errorf("htree: empty subtree")
	}
	r := sub.Root
	if n.Parent == nil {
		t.Root = r
		r.Parent = nil
		return nil
	}
	p := n.Parent
	if p.Left == n {
		p.Left = r
	} else {
		p.Right = r
	}
	r.Parent = p
	return nil
}

// Splice removes the free slot n from the tree: its sibling takes the
// place of their parent. Splicing the root of a single-node tree empties
// the tree.
func (t *Tree) Splice(n *Node) error {
	if !n.Free || !n.IsLeaf() {
		return fmt.Errorf("htree: node is not a free slot")
	}
	p := n.Parent
	if p == nil {
		t.Root = nil
		return nil
	}
	sib := n.Sibling()
	gp := p.Parent
	sib.Parent = gp
	if gp == nil {
		t.Root = sib
		return nil
	}
	if gp.Left == p {
		gp.Left = sib
	} else {
		gp.Right = sib
	}
	return nil
}

// UpdateInternalWeights recomputes every internal node's weight as the sum
// of its children, bottom-up (Algorithm 3 line 10). Free slots count as
// zero.
func (t *Tree) UpdateInternalWeights() {
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			if n.Free {
				return 0
			}
			return n.Weight
		}
		n.Weight = walk(n.Left) + walk(n.Right)
		return n.Weight
	}
	walk(t.Root)
}

// Validate checks structural invariants: every internal node has exactly
// two children with correct parent pointers, leaf IDs are unique, and
// internal weights equal the sum of their children (within epsilon) if
// requireWeights is set.
func (t *Tree) Validate(requireWeights bool) error {
	if t.Root == nil {
		return nil
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("htree: root has a parent")
	}
	ids := make(map[int]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if (n.Left == nil) != (n.Right == nil) {
			return fmt.Errorf("htree: node with exactly one child")
		}
		if n.IsLeaf() {
			if n.Free {
				return nil
			}
			if ids[n.ID] {
				return fmt.Errorf("htree: duplicate leaf ID %d", n.ID)
			}
			ids[n.ID] = true
			return nil
		}
		if n.Left.Parent != n || n.Right.Parent != n {
			return fmt.Errorf("htree: broken parent pointer under node (w=%g)", n.Weight)
		}
		if requireWeights {
			sum := n.Left.Weight + n.Right.Weight
			if diff := n.Weight - sum; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("htree: internal weight %g != child sum %g", n.Weight, sum)
			}
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	return walk(t.Root)
}

// String renders the tree in a compact nested form, e.g.
// "((1:0.10 2:0.10) 3:0.20)". Free slots render as "_".
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			b.WriteString("nil")
			return
		}
		if n.IsLeaf() {
			if n.Free {
				b.WriteByte('_')
				return
			}
			fmt.Fprintf(&b, "%d:%.2f", n.ID, n.Weight)
			return
		}
		b.WriteByte('(')
		walk(n.Left)
		b.WriteByte(' ')
		walk(n.Right)
		b.WriteByte(')')
	}
	walk(t.Root)
	return b.String()
}

// NextOrder exposes the creation counter (serialization keeps it so that
// restored trees stay deterministic).
func (t *Tree) NextOrder() int { return t.nextOrder }
