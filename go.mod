module nestdiff

go 1.22
