// Package nestdiff is a library for tracking multiple dynamically varying
// weather phenomena with nested simulations, reproducing Malakar et al.,
// "A Diffusion-Based Processor Reallocation Strategy for Tracking Multiple
// Dynamically Varying Weather Phenomena" (ICPP 2013).
//
// The library bundles:
//
//   - a surrogate weather model producing QCLOUD/OLR fields with multiple
//     transient organized cloud systems, plus 3×-resolution nested
//     simulations (package internal/wrfsim);
//   - the parallel data analysis algorithm that detects tall-cloud regions
//     from per-rank split files, with the paper's nearest-neighbour
//     clustering variant (internal/pda);
//   - Huffman-tree processor allocation of rectangular processor sub-grids
//     to nests, the partition-from-scratch strategy, the tree-based
//     hierarchical diffusion reallocation (Algorithm 3), and the dynamic
//     strategy that predicts both and picks the cheaper (internal/alloc,
//     internal/core);
//   - modelled interconnects (Blue Gene/L-style 3D torus with a
//     folding-based topology mapping, and a switched cluster), an
//     MPI-like in-process runtime with virtual time, block-intersection
//     Alltoallv redistribution plans and their metrics — time, hop-bytes,
//     sender/receiver overlap (internal/topology, internal/mpi,
//     internal/redist);
//   - the execution-time performance model built by Delaunay interpolation
//     over profiled domain sizes (internal/perfmodel).
//
// This package is the public facade: it re-exports the types needed to
// assemble the pieces and provides the System convenience constructor
// used by the examples. Entry points:
//
//	sys, _ := nestdiff.NewTorusSystem(1024)           // machine + models
//	tr, _ := sys.NewTracker(nestdiff.Diffusion)       // reallocation state
//	tr.Apply(set)                                     // adaptation point
//
// or, for the full simulation loop, System.NewPipeline.
package nestdiff

import (
	"fmt"
	"io"
	"net/http"

	"nestdiff/internal/alloc"
	"nestdiff/internal/core"
	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/pda"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/redist"
	"nestdiff/internal/scenario"
	"nestdiff/internal/service"
	"nestdiff/internal/topology"
	"nestdiff/internal/viz"
	"nestdiff/internal/wrfsim"
)

// Geometry.
type (
	// Point is a discrete 2D coordinate.
	Point = geom.Point
	// Rect is a half-open rectangle on a discrete grid.
	Rect = geom.Rect
	// Grid is a 2D process grid with row-major rank numbering.
	Grid = geom.Grid
)

// NewRect returns the rectangle at (x, y) with extents w×h.
func NewRect(x, y, w, h int) Rect { return geom.NewRect(x, y, w, h) }

// NewGrid returns a Px×Py process grid.
func NewGrid(px, py int) Grid { return geom.NewGrid(px, py) }

// Weather model.
type (
	// WeatherConfig parameterizes the surrogate weather model.
	WeatherConfig = wrfsim.Config
	// WeatherModel is the running parent simulation.
	WeatherModel = wrfsim.Model
	// Cell is one convective system.
	Cell = wrfsim.Cell
	// Nest is a 3×-resolution nested simulation.
	Nest = wrfsim.Nest
	// Split is one rank's split-file output.
	Split = wrfsim.Split
	// ParallelWeatherModel is the distributed (block-decomposed,
	// halo-exchanging) parent simulation, bit-equivalent to WeatherModel.
	ParallelWeatherModel = wrfsim.ParallelModel
	// ParallelNest is a nested simulation distributed over its allocated
	// processor sub-rectangle, with in-place Alltoallv redistribution.
	ParallelNest = wrfsim.ParallelNest
)

// NestRatio is the nested-simulation refinement ratio (3, as in the
// paper).
const NestRatio = wrfsim.NestRatio

// DefaultWeatherConfig returns the laptop-scale Indian-region
// configuration.
func DefaultWeatherConfig() WeatherConfig { return wrfsim.DefaultConfig() }

// NewWeatherModel builds a surrogate weather model.
func NewWeatherModel(cfg WeatherConfig) (*WeatherModel, error) { return wrfsim.NewModel(cfg) }

// Detection.
type (
	// PDAOptions are the cloud-detection thresholds of Algorithms 1–2.
	PDAOptions = pda.Options
	// Cluster is a contiguous region of strong cloud cover.
	Cluster = pda.Cluster
)

// DefaultPDAOptions returns the paper's detection thresholds.
func DefaultPDAOptions() PDAOptions { return pda.DefaultOptions() }

// AnalyzeSplits runs the serial detection pipeline (aggregate → sort →
// NNC → bounding rectangles) over split files.
func AnalyzeSplits(splits []Split, opt PDAOptions) ([]Rect, []Cluster, error) {
	return pda.Analyze(splits, opt)
}

// Scenarios.
type (
	// NestSpec identifies a nest and its region of interest.
	NestSpec = scenario.NestSpec
	// Set is the active nest configuration at an adaptation point.
	Set = scenario.Set
	// SyntheticConfig parameterizes the random churn generator.
	SyntheticConfig = scenario.Config
	// MonsoonConfig parameterizes the scripted monsoon scenario.
	MonsoonConfig = scenario.MonsoonConfig
	// TimedCell schedules a convective-cell genesis.
	TimedCell = scenario.TimedCell
)

// DefaultSyntheticConfig returns the paper's synthetic churn parameters.
func DefaultSyntheticConfig() SyntheticConfig { return scenario.DefaultSyntheticConfig() }

// GenerateSynthetic produces a deterministic nest-churn sequence.
func GenerateSynthetic(cfg SyntheticConfig) ([]Set, error) { return scenario.Generate(cfg) }

// DefaultMonsoonConfig returns the Mumbai-2005-calibrated scenario.
func DefaultMonsoonConfig() MonsoonConfig { return scenario.DefaultMonsoonConfig() }

// MonsoonSchedule builds the deterministic genesis schedule of the
// scripted monsoon.
func MonsoonSchedule(cfg MonsoonConfig) []TimedCell { return scenario.MonsoonSchedule(cfg) }

// Allocation and strategies.
type (
	// Allocation assigns processor sub-rectangles to nests.
	Allocation = alloc.Allocation
	// AllocationRow is one allocation-table line (Table I format).
	AllocationRow = alloc.Row
	// Strategy selects the reallocation policy.
	Strategy = core.Strategy
	// Tracker owns nest allocation state across adaptation points.
	Tracker = core.Tracker
	// TrackerOptions tunes a Tracker.
	TrackerOptions = core.Options
	// StepMetrics records one adaptation point.
	StepMetrics = core.StepMetrics
	// Pipeline runs the full simulation + detection + reallocation loop.
	Pipeline = core.Pipeline
	// PipelineConfig wires a Pipeline.
	PipelineConfig = core.PipelineConfig
	// AdaptationEvent describes one PDA invocation and its consequences.
	AdaptationEvent = core.AdaptationEvent
)

// Reallocation strategies.
const (
	// Scratch rebuilds the Huffman tree from the new weights (§IV-A).
	Scratch = core.Scratch
	// Diffusion reorganizes the existing tree (Algorithm 3, §IV-B).
	Diffusion = core.Diffusion
	// Dynamic predicts both and picks the cheaper (§IV-C).
	Dynamic = core.Dynamic
)

// DefaultTrackerOptions returns the evaluation defaults.
func DefaultTrackerOptions() TrackerOptions { return core.DefaultOptions() }

// DefaultPipelineConfig returns a laptop-scale pipeline configuration.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultPipelineConfig() }

// Networks and redistribution.
type (
	// Network is a modelled interconnect.
	Network = topology.Network
	// RedistMetrics aggregates redistribution measurements.
	RedistMetrics = redist.Metrics
	// Transfer describes one nest's redistribution.
	Transfer = redist.Transfer
	// Field is a dense 2D scalar grid.
	Field = field.Field
)

// System bundles a machine model (process grid + interconnect) with the
// profiled performance models, ready to build trackers and pipelines.
type System struct {
	Grid   Grid
	Net    Network
	Model  *perfmodel.ExecModel
	Oracle *perfmodel.Oracle
}

func newSystem(g Grid, net Network) (*System, error) {
	oracle := perfmodel.DefaultOracle()
	model, err := perfmodel.Profile(oracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
	if err != nil {
		return nil, err
	}
	return &System{Grid: g, Net: net, Model: model, Oracle: oracle}, nil
}

// NewTorusSystem builds a Blue Gene/L-style system: a 3D torus with the
// folding-based topology-aware mapping over a near-square process grid of
// the given core count.
func NewTorusSystem(cores int) (*System, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("nestdiff: invalid core count %d", cores)
	}
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(cores), topology.DefaultTorusParams())
	if err != nil {
		return nil, err
	}
	return newSystem(g, net)
}

// NewMeshSystem builds a 3D mesh system: like NewTorusSystem but without
// wraparound links (§IV-C1 covers both mesh and torus networks).
func NewMeshSystem(cores int) (*System, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("nestdiff: invalid core count %d", cores)
	}
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	net, err := topology.NewMesh3D(g, topology.TorusDimsFor(cores), topology.DefaultTorusParams())
	if err != nil {
		return nil, err
	}
	return newSystem(g, net)
}

// NewSwitchedSystem builds a switched-cluster system ("fist"-style) with
// the given core count and cores per node.
func NewSwitchedSystem(cores, perNode int) (*System, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("nestdiff: invalid core count %d", cores)
	}
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	net, err := topology.NewSwitched(cores, perNode, topology.DefaultSwitchedParams())
	if err != nil {
		return nil, err
	}
	return newSystem(g, net)
}

// NewTracker builds a reallocation tracker on the system with default
// options.
func (s *System) NewTracker(strategy Strategy) (*Tracker, error) {
	return core.NewTracker(s.Grid, s.Net, s.Model, s.Oracle, strategy, core.DefaultOptions())
}

// NewTrackerWithOptions builds a tracker with explicit options.
func (s *System) NewTrackerWithOptions(strategy Strategy, opts TrackerOptions) (*Tracker, error) {
	return core.NewTracker(s.Grid, s.Net, s.Model, s.Oracle, strategy, opts)
}

// NewPipeline assembles the full simulation loop around a weather model
// and a tracker built on this system.
func (s *System) NewPipeline(m *WeatherModel, tr *Tracker, cfg PipelineConfig) (*Pipeline, error) {
	return core.NewPipeline(m, tr, cfg)
}

// RedistributeField executes one nest redistribution through the MPI-like
// runtime on the system's network, returning the reassembled field and
// the modelled exchange time.
func (s *System) RedistributeField(tr Transfer, src *Field) (*Field, float64, error) {
	w, err := mpi.NewWorld(s.Grid.Size(), mpi.Config{Net: s.Net})
	if err != nil {
		return nil, 0, err
	}
	return core.RedistributeField(w, s.Grid, tr, src)
}

// NewParallelWeatherModel builds the distributed parent simulation over
// the system's process grid and network — one MPI rank per processor,
// halo exchange each step, split files straight from rank-local state.
func (s *System) NewParallelWeatherModel(cfg WeatherConfig) (*ParallelWeatherModel, error) {
	w, err := mpi.NewWorld(s.Grid.Size(), mpi.Config{Net: s.Net})
	if err != nil {
		return nil, err
	}
	return wrfsim.NewParallelModel(cfg, s.Grid, w)
}

// AnalyzeSplitsParallel runs the fully parallel analysis pipeline (local
// clustering per rank + cluster-level merge at the root — the paper's
// future-work extension) over the splits of the process grid pg with the
// given number of analysis ranks.
func AnalyzeSplitsParallel(splits []Split, pg Grid, ranks int, opt PDAOptions) ([]Rect, []Cluster, error) {
	net, err := topology.NewSwitched(ranks, 8, topology.DefaultSwitchedParams())
	if err != nil {
		return nil, nil, err
	}
	w, err := mpi.NewWorld(ranks, mpi.Config{Net: net})
	if err != nil {
		return nil, nil, err
	}
	loader := func(rank int) (Split, error) {
		if rank < 0 || rank >= len(splits) {
			return Split{}, fmt.Errorf("nestdiff: no split for rank %d", rank)
		}
		return splits[rank], nil
	}
	res, err := pda.RunParallelNNC(w, pg, loader, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Rects, res.Clusters, nil
}

// LoadWeatherModel restores a weather model from a checkpoint written by
// WeatherModel.Save. The restored model continues bit-identically.
func LoadWeatherModel(r io.Reader) (*WeatherModel, error) { return wrfsim.Load(r) }

// RestoreTracker rebuilds a tracker from a checkpoint written by
// Tracker.SaveState, attached to this system's machine and models.
func (s *System) RestoreTracker(r io.Reader) (*Tracker, error) {
	return core.RestoreTracker(r, s.Net, s.Model, s.Oracle)
}

// Service: the concurrent simulation-job scheduler behind cmd/nestserved.
type (
	// Scheduler runs many pipelines concurrently on a bounded worker pool
	// with per-job lifecycle, pause/resume checkpoints and graceful drain.
	Scheduler = service.Scheduler
	// SchedulerConfig tunes the worker pool.
	SchedulerConfig = service.SchedulerConfig
	// JobConfig describes one simulation job (machine, strategy, scenario,
	// pipeline shape) — the POST /jobs body.
	JobConfig = service.JobConfig
	// JobSnapshot is a job's externally visible progress.
	JobSnapshot = service.Snapshot
	// JobState is one stage of the job lifecycle.
	JobState = service.JobState
)

// Job lifecycle states.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobPaused    = service.StatePaused
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// NewScheduler starts a simulation-job scheduler with the given
// worker-pool size.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return service.NewScheduler(cfg) }

// NewServiceHandler returns the nestserved JSON API (jobs CRUD,
// pause/resume/cancel, events, Prometheus metrics) over a scheduler.
func NewServiceHandler(s *Scheduler) http.Handler { return service.NewHandler(s) }

// DefaultJobConfig returns a laptop-scale monsoon job on a 256-core torus.
func DefaultJobConfig() JobConfig { return service.DefaultJobConfig() }

// RestorePipeline rebuilds a pipeline from a checkpoint written by
// Pipeline.SaveState, attached to this system's machine and models. The
// restored pipeline continues bit-identically to the saved one.
func (s *System) RestorePipeline(r io.Reader) (*Pipeline, error) {
	return core.RestorePipeline(r, s.Net, s.Model, s.Oracle)
}

// Heatmap renders a field as an ASCII heat map with nest-region overlays.
func Heatmap(f *Field, cols, rows int, nests map[int]Rect) string {
	return viz.Heatmap(f, cols, rows, nests)
}

// AllocationGrid renders a processor allocation as a labelled ASCII grid.
func AllocationGrid(a *Allocation, maxCols int) string {
	return viz.AllocationGrid(a, maxCols)
}
