// Command nestctl is the fleet control plane: it shards nest-tracking
// jobs across a fleet of nestserved workers, tracks their liveness, and
// re-homes the jobs of a dead worker onto survivors from the shared
// checkpoint store.
//
// Usage:
//
//	nestctl -addr :9090 -liveness-deadline 6s
//
// Workers join with nestserved's fleet flags (all sharing one
// -checkpoint-dir so survivors can adopt a dead peer's checkpoints):
//
//	nestserved -addr :8081 -controller http://localhost:9090 \
//	    -worker-id w1 -advertise http://localhost:8081 -checkpoint-dir /srv/ckpt
//
// Clients then talk to the controller exactly as they would to a single
// worker — POST /jobs, GET /jobs/{id}, pause/resume/cancel — and nestctl
// routes each call to the owning worker. GET /metrics serves the
// aggregated fleet view; when the fleet is saturated, submissions are
// shed with 429 + Retry-After.
//
// On SIGINT/SIGTERM the controller stops sweeping and exits; workers keep
// running their jobs and re-register when a controller returns.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"nestdiff/internal/elastic"
	"nestdiff/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nestctl: ")
	var (
		addr       = flag.String("addr", ":9090", "HTTP listen address")
		liveness   = flag.Duration("liveness-deadline", 6*time.Second, "declare a worker dead after this much heartbeat silence")
		sweep      = flag.Duration("sweep", time.Second, "liveness/adoption sweep interval")
		maxPending = flag.Int("max-pending", 0, "shed submissions with 429 beyond this many non-terminal jobs fleet-wide (0: workers' queue limits only)")
		retryAfter = flag.Int("retry-after", 0, "Retry-After seconds on shed submissions (0: default)")
		replicas   = flag.Int("replicas", 0, "consistent-hash vnodes per worker (0: default)")
		stateDir   = flag.String("state-dir", "", "directory for the durable placement WAL; a restarted controller replays it and resumes with the same placement table (empty: in-memory only)")

		procBudget   = flag.Int("proc-budget", 0, "fleet-wide processor budget for the autoscaler: hot jobs grow and idle jobs shrink against it (0: autoscaler off)")
		autoInterval = flag.Duration("autoscale-interval", 0, "autoscaler decision-loop period (0: default 2s)")
		autoCooldown = flag.Duration("autoscale-cooldown", 0, "per-job minimum spacing between autoscaler resizes (0: default 30s)")
	)
	flag.Parse()

	ctl := fleet.NewController(fleet.Config{
		LivenessDeadline:  *liveness,
		SweepInterval:     *sweep,
		MaxPending:        *maxPending,
		RetryAfterSeconds: *retryAfter,
		Replicas:          *replicas,
		StateDir:          *stateDir,
	})
	defer ctl.Close()

	if *procBudget > 0 {
		if err := ctl.EnableAutoscaler(elastic.AutoscalerConfig{
			Budget:   *procBudget,
			Interval: *autoInterval,
			Cooldown: *autoCooldown,
		}); err != nil {
			log.Fatalf("autoscaler: %v", err)
		}
		log.Printf("autoscaler on: %d-processor fleet budget", *procBudget)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           ctl.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("control plane listening on %s (liveness deadline %s)", *addr, *liveness)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
