// Command nestsim runs the full framework end-to-end: the surrogate
// monsoon simulation, periodic parallel data analysis, on-the-fly nest
// spawn/delete, and processor reallocation with the chosen strategy. It
// prints one line per adaptation event and a final summary — a compressed
// version of the paper's real runs.
//
// Usage:
//
//	nestsim -steps 300 -strategy diffusion
//	nestsim -steps 600 -strategy dynamic -cores 1024 -analysis 32
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"nestdiff/internal/core"
	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	vizpkg "nestdiff/internal/viz"
	"nestdiff/internal/wrfsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nestsim: ")
	var (
		steps    = flag.Int("steps", 300, "parent simulation steps (2 simulated minutes each)")
		strategy = flag.String("strategy", "diffusion", "reallocation strategy: scratch|diffusion|dynamic")
		cores    = flag.Int("cores", 256, "total processor count P")
		analysis = flag.Int("analysis", 16, "parallel data analysis ranks N")
		interval = flag.Int("interval", 5, "parent steps between PDA invocations")
		seed     = flag.Int64("seed", 2607, "scenario seed")
		scen     = flag.String("scenario", "monsoon", "weather scenario: monsoon|cyclone|burst")
		verbose  = flag.Bool("v", false, "print every adaptation event")
		viz      = flag.Bool("viz", false, "render the final QCLOUD field and allocation as ASCII")
		distrib  = flag.Bool("distributed", false, "run nests block-distributed with executed Alltoallv redistribution")
		csvPath  = flag.String("csv", "", "write per-adaptation-point metrics to this CSV file")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	// Machine: BG/L-style torus over a near-square process grid.
	px, py := geom.NearSquareFactors(*cores)
	grid := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(grid, topology.TorusDimsFor(*cores), topology.DefaultTorusParams())
	if err != nil {
		log.Fatal(err)
	}
	oracle := perfmodel.DefaultOracle()
	model, err := perfmodel.Profile(oracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := core.NewTracker(grid, net, model, oracle, strat, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Weather model driven by the chosen scripted scenario.
	sched, nx, ny, err := buildSchedule(*scen, *steps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = nx, ny
	wcfg.SpawnRate = 0
	// The cyclone scenario renews its own core in place; merging those
	// renewals would double-count the same system.
	wcfg.MergeEnabled = strings.ToLower(*scen) != "cyclone"
	// Compact-storm parameterization: sharper OLR signatures keep the
	// detected clusters storm-sized, so nests track individual systems
	// instead of one domain-wide cloud shield.
	wcfg.DecayTau = 2400
	wcfg.OLRPerQ = 10
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	wrfPG := geom.NewGrid(18, 15) // split-file decomposition over the domain
	pipe, err := core.NewPipeline(m, tracker, core.PipelineConfig{
		WRFGrid:       wrfPG,
		AnalysisRanks: *analysis,
		Interval:      *interval,
		PDA:           pda.DefaultOptions(),
		MaxNests:      9,
		Distributed:   *distrib,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("nestsim: %d cores (%dx%d grid, %v torus), strategy %s, scenario %s, %d steps\n",
		*cores, px, py, topology.TorusDimsFor(*cores), strat, *scen, *steps)

	// Ctrl-C stops the simulation at the next step boundary; the summary
	// below still covers everything simulated so far.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	si := 0
	reported := 0
	interrupted := false
	for step := 0; step < *steps && !interrupted; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			if err := m.InjectCell(sched[si].Cell); err != nil {
				log.Fatal(err)
			}
			si++
		}
		if err := pipe.RunContext(ctx, 1); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Printf("\ninterrupted at step %d of %d\n", pipe.StepCount(), *steps)
				interrupted = true
				continue
			}
			log.Fatal(err)
		}
		for _, e := range pipe.Events()[reported:] {
			reported++
			if !*verbose && len(e.Diff.Added)+len(e.Diff.Deleted) == 0 {
				continue
			}
			fmt.Printf("t=%5.0f min  nests=%d (+%d -%d =%d)  exec=%6.1fs redist=%6.3fs  overlap=%5.1f%%  [%s]\n",
				float64(e.Step)*wcfg.Dt/60, len(e.Set),
				len(e.Diff.Added), len(e.Diff.Deleted), len(e.Diff.Retained),
				e.Metrics.ExecTime, e.Metrics.RedistTime, e.Metrics.Redist.OverlapPercent,
				e.Metrics.Used)
		}
	}

	exec, redist := tracker.Totals()
	liveNests := len(pipe.Nests())
	if *distrib {
		liveNests = len(pipe.DistributedNests())
	}
	fmt.Printf("\nsummary: %d adaptation points, %d live nests at end\n",
		len(pipe.Events()), liveNests)
	fmt.Printf("total modelled execution time:      %8.1f s\n", exec)
	fmt.Printf("total modelled redistribution time: %8.3f s\n", redist)
	if *distrib {
		var executed float64
		for _, e := range pipe.Events() {
			executed += e.ExecutedRedistTime
		}
		fmt.Printf("total executed redistribution time: %8.3f s (real Alltoallv on virtual clock)\n", executed)
	}
	if a := tracker.Allocation(); a != nil && len(a.Rects) > 0 {
		fmt.Println("final allocation:")
		for _, r := range a.Table() {
			fmt.Printf("  nest %-3d start rank %-5d sub-grid %dx%d\n", r.NestID, r.StartRank, r.Width, r.Height)
		}
	}

	if *viz {
		nestRegions := map[int]geom.Rect{}
		for _, spec := range pipe.ActiveSet() {
			nestRegions[spec.ID] = spec.Region
		}
		fmt.Println("\nQCLOUD field with nest regions:")
		fmt.Print(vizpkg.Heatmap(m.QCloud(), 90, 30, nestRegions))
		fmt.Println()
		fmt.Print(vizpkg.AllocationGrid(tracker.Allocation(), 64))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracker.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "scratch":
		return core.Scratch, nil
	case "diffusion", "tree", "tree-based":
		return core.Diffusion, nil
	case "dynamic":
		return core.Dynamic, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want scratch, diffusion or dynamic)", s)
}

// buildSchedule resolves the named scenario to a genesis schedule and the
// domain extents it was designed for.
func buildSchedule(name string, steps int, seed int64) ([]scenario.TimedCell, int, int, error) {
	switch strings.ToLower(name) {
	case "monsoon":
		mc := scenario.DefaultMonsoonConfig()
		mc.Steps = steps
		mc.Seed = seed
		return scenario.MonsoonSchedule(mc), mc.NX, mc.NY, nil
	case "cyclone":
		cc := scenario.DefaultCycloneConfig()
		cc.Steps = steps
		cc.Seed = seed
		return scenario.CycloneSchedule(cc), cc.NX, cc.NY, nil
	case "burst":
		bc := scenario.DefaultBurstConfig()
		bc.Steps = steps
		bc.Seed = seed
		return scenario.BurstSchedule(bc), bc.NX, bc.NY, nil
	}
	return nil, 0, 0, fmt.Errorf("unknown scenario %q (want monsoon, cyclone or burst)", name)
}
