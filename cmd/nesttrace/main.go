// Command nesttrace summarizes a nestdiff trace ledger: the append-only
// JSONL event log a traced job writes when nestserved runs with
// -ledger-dir (or any JSONL stream of obs.Event lines).
//
// Usage:
//
//	nesttrace ledger/job-1.jsonl
//	nesttrace -json ledger/job-1.jsonl
//
// The text report has three parts: the per-phase wall-time breakdown with
// p50/p90/p99 latencies, the adaptation-event table (one row per PDA
// invocation that changed the nest set), and the scratch-vs-diffusion
// decision tally — how often the dynamic predictor picked the candidate
// that actually turned out cheaper, and the total regret when it did not.
//
// A torn final line (the job's process died mid-append) is skipped and
// reported, never fatal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"nestdiff/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nesttrace: ")
	asJSON := flag.Bool("json", false, "emit the summary as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nesttrace [-json] LEDGER.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	events, skipped, err := obs.ReadLedgerFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	sum := obs.Summarize(events)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			obs.Summary
			Skipped int `json:"skipped_lines,omitempty"`
		}{sum, skipped}); err != nil {
			log.Fatal(err)
		}
		return
	}
	report(os.Stdout, flag.Arg(0), sum, skipped)
}

// report renders the text summary.
func report(out *os.File, path string, s obs.Summary, skipped int) {
	fmt.Fprintf(out, "ledger %s: %d events through step %d", path, s.Events, s.Steps)
	if skipped > 0 {
		fmt.Fprintf(out, " (%d unparseable line(s) skipped)", skipped)
	}
	fmt.Fprintln(out)

	fmt.Fprintf(out, "\nPhase breakdown\n")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "series\tkind\tcount\ttotal\tp50\tp90\tp99")
	for _, p := range s.Phases {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			p.Name, p.Kind, p.Count, ns(p.TotalNS), ns(p.P50NS), ns(p.P90NS), ns(p.P99NS))
	}
	tw.Flush()

	fmt.Fprintf(out, "\nAdaptation events: %d (nests: +%d spawned, %d moved, -%d deleted)\n",
		len(s.Adaptations), s.NestSpawns, s.NestMoves, s.NestDeletes)
	if len(s.Adaptations) > 0 {
		tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "step\tstrategy\tpredicted\tactual\thop-bytes\tredist-bytes\tdetail")
		for _, e := range s.Adaptations {
			fmt.Fprintf(tw, "%d\t%s\t%.4g\t%.4g\t%.4g\t%d\t%s\n",
				e.Step, e.Strategy, e.Predicted, e.Actual, e.HopBytes, e.RedistBytes, e.Detail)
		}
		tw.Flush()
	}

	d := s.Decisions
	fmt.Fprintf(out, "\nReallocation decisions: %d (%d scratch, %d diffusion)\n",
		d.Decisions, d.ScratchPicks, d.DiffusionPicks)
	if d.Decisions > 0 {
		fmt.Fprintf(out, "  predicted cost %.4g s, actual cost %.4g s\n", d.PredictedTotal, d.ActualTotal)
	}
	if d.Dynamic > 0 {
		fmt.Fprintf(out, "  dynamic predictor: %d/%d correct picks, total regret %.4g s\n",
			d.Correct, d.Dynamic, d.RegretTotal)
	}
}

// ns renders a nanosecond count as a rounded duration.
func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}
