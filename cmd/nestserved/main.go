// Command nestserved is the resident simulation service: it schedules
// many concurrent nest-tracking pipelines on a bounded worker pool and
// exposes a JSON job API plus Prometheus metrics over HTTP.
//
// Usage:
//
//	nestserved -addr :8080 -workers 8
//
// Submit a job, poll it, pause/resume it, scrape metrics:
//
//	curl -X POST localhost:8080/jobs -d '{"cores":1024,"strategy":"diffusion","scenario":"monsoon","steps":300}'
//	curl localhost:8080/jobs/job-1
//	curl -X POST localhost:8080/jobs/job-1/pause
//	curl -X POST localhost:8080/jobs/job-1/resume
//	curl localhost:8080/jobs/job-1/events
//	curl -H 'Accept: text/event-stream' localhost:8080/jobs/job-1/events   # live SSE stream
//	curl 'localhost:8080/jobs/job-1/field?var=qcloud&rect=0,0,64,64' -o tiles.bin   # quantized field read
//	curl localhost:8080/jobs/job-1/trace      # structured trace ("trace": true jobs)
//	curl localhost:8080/jobs/job-1/timeline   # per-phase timing breakdown
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz   # liveness
//	curl localhost:8080/readyz    # readiness (503 once draining)
//
// With -pprof ADDR, net/http/pprof is served on its own listener and mux,
// never on the public API listener. With -ledger-dir DIR, traced jobs
// additionally write an append-only JSONL event ledger to
// DIR/<jobID>.jsonl, summarizable offline with nesttrace.
//
// With -controller URL the daemon joins a nestctl fleet: it registers
// under -worker-id at -advertise and heartbeats every -heartbeat. Fleet
// workers share a -checkpoint-dir, so checkpoint recovery at startup is
// left to the controller's adoption path (a fleet worker must not
// re-register its dead peers' checkpoints as its own jobs).
//
// On SIGINT/SIGTERM the daemon drains gracefully: running jobs checkpoint
// at their next step boundary and park as paused before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nestdiff/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nestserved: ")
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (jobs simulating concurrently; default: all CPUs)")
		queue     = flag.Int("queue", 256, "submit queue depth")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for running jobs to checkpoint on shutdown")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for on-disk job checkpoint mirrors (empty: in-memory only)")
		ledgerDir = flag.String("ledger-dir", "", "directory for traced jobs' JSONL event ledgers (empty: in-memory trace ring only)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty: disabled; never on the public listener)")

		tileCache = flag.Int64("tile-cache-bytes", 64<<20, "byte budget of the quantized tile cache serving GET /jobs/{id}/field")
		snapEvery = flag.Int("snapshot-every", 0, "materialize each running job's read snapshot every N steps even with no reader (0: demand-driven only)")

		controller = flag.String("controller", "", "nestctl base URL to join as a fleet worker (empty: standalone)")
		workerID   = flag.String("worker-id", "", "fleet-wide worker ID (required with -controller)")
		advertise  = flag.String("advertise", "", "base URL the controller reaches this worker on (required with -controller)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "fleet heartbeat interval")
	)
	flag.Parse()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers: effWorkers, QueueDepth: *queue, CheckpointDir: *ckptDir, LedgerDir: *ledgerDir,
		// In a fleet the checkpoint dir is shared; recovery of orphaned
		// checkpoints is the controller's adoption decision, not ours.
		DisableRecovery: *controller != "",
		TileCacheBytes:  *tileCache,
		SnapshotEvery:   *snapEvery,
	})
	var agent *service.Agent
	if *controller != "" {
		var err error
		agent, err = service.StartAgent(service.AgentConfig{
			ControllerURL:     *controller,
			WorkerID:          *workerID,
			AdvertiseURL:      *advertise,
			HeartbeatInterval: *heartbeat,
			Sched:             sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Stop()
		log.Printf("joined fleet at %s as %s (advertising %s)", *controller, *workerID, *advertise)
	}
	if *pprofAddr != "" {
		// pprof gets a dedicated mux on a dedicated listener so profiling
		// endpoints are never reachable through the public API address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(sched),
		// A stalled or malicious client must not pin a connection (or a
		// handler goroutine) forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s with %d workers", *addr, effWorkers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining jobs (up to %s)", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(drainCtx); err != nil {
		log.Printf("scheduler drain: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if agent != nil {
		// Jobs are parked and their checkpoints persisted to the shared
		// store; telling the controller we left on purpose lets survivors
		// adopt them on the next sweep instead of waiting out the liveness
		// deadline wondering whether we crashed.
		agent.Deregister()
		log.Printf("deregistered from fleet")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
