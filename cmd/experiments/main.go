// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the simulated substrates. Each experiment prints
// the rows/series the paper reports; absolute times are modelled, so the
// comparisons (who wins, by what factor) are the meaningful output.
//
// Usage:
//
//	experiments -run all
//	experiments -run table4 -cases 70
//	experiments -run fig10 -cases 70 > fig10.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"nestdiff/internal/alloc"
	"nestdiff/internal/experiments"
	"nestdiff/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run   = flag.String("run", "all", "experiment: all|table1|table2|fig8|fig9|table4|fig10|fig11|real|dynamic|fig12")
		cases = flag.Int("cases", 70, "synthetic reconfiguration cases (paper: 70)")
		seed  = flag.Int64("seed", 1913, "scenario seed")
		steps = flag.Int("steps", 300, "monsoon steps for the real-trace experiment")
	)
	flag.Parse()

	runners := map[string]func() error{
		"table1":     table1,
		"table2":     table2,
		"fig8":       fig8,
		"fig9":       fig9,
		"table4":     func() error { return table4(*cases, *seed) },
		"fig10":      func() error { return figSeries(*cases, *seed, "hopbytes") },
		"fig11":      func() error { return figSeries(*cases, *seed, "overlap") },
		"real":       func() error { return realTrace(*steps) },
		"dynamic":    func() error { return dynamic(*seed) },
		"fig12":      func() error { return dynamic(*seed) },
		"scaling":    func() error { return scaling(*seed) },
		"insertion":  func() error { return insertion(*cases, *seed) },
		"mapping":    func() error { return mapping(*cases, *seed) },
		"pdascale":   pdaScaling,
		"contention": func() error { return contention(*seed) },
	}
	order := []string{"table1", "table2", "fig8", "fig9", "table4", "fig10", "fig11",
		"real", "dynamic", "scaling", "insertion", "mapping", "pdascale", "contention"}

	// Ctrl-C stops the suite between experiments; the one in flight is
	// allowed to finish so its output stays complete.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	name := strings.ToLower(*run)
	if name == "all" {
		for _, n := range order {
			if ctx.Err() != nil {
				log.Printf("interrupted before %s; stopping", n)
				return
			}
			if err := runners[n](); err != nil {
				log.Fatalf("%s: %v", n, err)
			}
			fmt.Println()
		}
		return
	}
	r, ok := runners[name]
	if !ok {
		log.Printf("unknown experiment %q", name)
		flag.Usage()
		os.Exit(2)
	}
	if err := r(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
}

func printRows(title string, rows []alloc.Row) {
	fmt.Printf("%s\n%-8s %-10s %s\n", title, "Nest ID", "Start Rank", "Processor sub-grid")
	for _, r := range rows {
		fmt.Printf("%-8d %-10d %dx%d\n", r.NestID, r.StartRank, r.Width, r.Height)
	}
}

func table1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	printRows("Table I — processor allocation on 1024 cores (5 nests, weights .1:.1:.2:.25:.35)", rows)
	return nil
}

func table2() error {
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	printRows("Table II — partition from scratch on 1024 cores (nests 3,5,6, weights .27:.42:.31)", rows)
	fmt.Println("note: the paper lists 19x13/19x19 for nests 3/6, inconsistent with its own")
	fmt.Println("weights (0.27/0.58 of 32 rows is 15); see EXPERIMENTS.md.")
	return nil
}

func fig8() error {
	res, err := experiments.Fig8()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 8 — tree-based hierarchical diffusion (delete 1,2,4; retain 3,5; add 6)")
	fmt.Printf("old tree: %s\n", res.OldTree)
	fmt.Printf("new tree: %s\n", res.NewTree)
	printRows("new allocation:", res.NewRows)
	for _, id := range []int{3, 5} {
		fmt.Printf("nest %d: old/new processor overlap %d cells (scratch: %d)\n",
			id, res.OverlapCells[id], res.ScratchOverlapCells[id])
	}
	return nil
}

func fig9() error {
	res, err := experiments.Fig9()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 9 — nearest-neighbour clustering comparison (monsoon snapshots)")
	fmt.Printf("snapshots analyzed:                 %d\n", res.Snapshots)
	fmt.Printf("overlapping pairs, 2-hop baseline:  %d\n", res.SimpleOverlapsTotal)
	fmt.Printf("overlapping pairs, 1+2-hop + 30%%:   %d\n", res.OursOverlapsTotal)
	fmt.Printf("showcase snapshot at step %d: ours disjoint, baseline %d overlapping pairs\n",
		res.ShowcaseStep, res.ShowcaseSimpleOverlaps)
	fmt.Printf("  our clusters:      %v\n", res.ShowcaseOursRects)
	fmt.Printf("  baseline clusters: %v\n", res.ShowcaseSimpleRects)
	return nil
}

func table4(cases int, seed int64) error {
	rows, results, err := experiments.Table4(cases, seed)
	if err != nil {
		return err
	}
	fmt.Printf("Table IV — mean redistribution-time improvement, diffusion vs scratch (%d synthetic cases)\n", cases)
	fmt.Printf("%-18s %-12s (paper)\n", "Configuration", "Improvement")
	paper := []string{"15%", "25%", "10%"}
	for i, r := range rows {
		fmt.Printf("%-18s %6.1f%%      %s\n", r.Configuration, r.ImprovementPercent, paper[i])
	}
	fmt.Println()
	fmt.Println("supporting aggregates (§V-D/E):")
	for _, res := range results {
		fmt.Printf("  %-18s exec penalty %.1f%% | avg hop-bytes %.2f -> %.2f | overlap %.1f%% -> %.1f%%\n",
			res.Machine, res.ExecPenaltyPercent,
			res.MeanScratchHopBytes, res.MeanDiffusionHopBytes,
			res.MeanScratchOverlap, res.MeanDiffusionOverlap)
	}
	return nil
}

func figSeries(cases int, seed int64, kind string) error {
	m, err := experiments.BGL(1024)
	if err != nil {
		return err
	}
	res, err := experiments.RunSynthetic(m, cases, seed)
	if err != nil {
		return err
	}
	switch kind {
	case "hopbytes":
		fmt.Println("Fig. 10 — average hop-bytes per case, BG/L 1024 cores")
		fmt.Println("case,scratch,diffusion")
		for _, c := range res.Cases {
			fmt.Printf("%d,%.3f,%.3f\n", c.Case, c.ScratchHopBytes, c.DiffusionHopBytes)
		}
		fmt.Printf("mean,%.2f,%.2f   (paper: 5.25 vs 2.44)\n",
			res.MeanScratchHopBytes, res.MeanDiffusionHopBytes)
	case "overlap":
		fmt.Println("Fig. 11 — sender/receiver overlap percent per case, BG/L 1024 cores")
		fmt.Println("case,scratch,diffusion")
		for _, c := range res.Cases {
			fmt.Printf("%d,%.1f,%.1f\n", c.Case, c.ScratchOverlap, c.DiffusionOverlap)
		}
		fmt.Printf("mean,%.1f,%.1f\n", res.MeanScratchOverlap, res.MeanDiffusionOverlap)
	}
	return nil
}

func realTrace(steps int) error {
	fmt.Println("§V-D — real (monsoon-trace) test cases")
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = steps
	for _, cores := range []int{512, 1024} {
		m, err := experiments.BGL(cores)
		if err != nil {
			return err
		}
		res, err := experiments.RunRealTrace(m, mc)
		if err != nil {
			return err
		}
		paper := map[int]string{512: "14%", 1024: "12%"}
		fmt.Printf("%-16s improvement %5.1f%% total / %5.1f%% per-case (paper: %s) over %d reconfigurations, up to %d nests\n",
			m.Name, res.TotalRedistImprovementPercent, res.RedistImprovementPercent,
			paper[cores], res.Reconfigurations, res.MaxNests)
	}
	return nil
}

func dynamic(seed int64) error {
	m, err := experiments.BGL(1024)
	if err != nil {
		return err
	}
	res, err := experiments.RunDynamic(m, 12, seed)
	if err != nil {
		return err
	}
	fmt.Println("§V-F / Fig. 12 — dynamic strategy, 12 reconfigurations on BG/L 1024 cores")
	fmt.Printf("picked: scratch %d, tree-based %d (paper: 2 and 10)\n",
		res.PickedScratch, res.PickedDiffusion)
	fmt.Printf("correct decisions: %d of %d (paper: 10 of 12)\n",
		res.CorrectPicks, res.Reconfigurations)
	fmt.Printf("execution-time prediction Pearson r: %.2f (paper: 0.9)\n", res.PearsonR)
	fmt.Println("\nFig. 12 totals (seconds):")
	fmt.Printf("%-12s %-12s %-12s %s\n", "strategy", "execution", "redistribution", "total")
	for _, s := range []string{"tree-based", "scratch", "dynamic"} {
		key := s
		if s == "tree-based" {
			key = "diffusion"
		}
		e, r := res.ExecTotal[key], res.RedistTotal[key]
		fmt.Printf("%-12s %-12.1f %-14.1f %.1f\n", s, e, r, e+r)
	}
	return nil
}

func scaling(seed int64) error {
	fmt.Println("Ablation — scaling with processor count (§IV-B scalability claim)")
	rows, err := experiments.ScalingStudy([]int{64, 256, 1024, 4096}, 25, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %-22s %-22s\n", "cores", "improvement", "mean max hops (S/D)", "avg hop-bytes (S/D)")
	for _, r := range rows {
		fmt.Printf("%-8d %6.1f%%        %6.1f / %-6.1f        %6.2f / %-6.2f\n",
			r.Cores, r.RedistImprovementPercent,
			r.ScratchMaxHops, r.DiffusionMaxHops,
			r.ScratchHopBytes, r.DiffusionHopBytes)
	}
	return nil
}

func insertion(cases int, seed int64) error {
	fmt.Println("Ablation — Algorithm 3 free-slot insertion policy (closest weight vs first free)")
	res, err := experiments.InsertionPolicyAblation(1024, cases, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-18s %s\n", "policy", "mean aspect ratio", "mean exec time")
	fmt.Printf("%-16s %-18.3f %.2f s\n", "closest-weight", res.ClosestAspect, res.ClosestExec)
	fmt.Printf("%-16s %-18.3f %.2f s\n", "first-free", res.FirstFreeAspect, res.FirstFreeExec)
	return nil
}

func mapping(cases int, seed int64) error {
	fmt.Println("Ablation — folding-based topology mapping vs row-major placement (BG/L 1024)")
	res, err := experiments.MappingAblation(1024, cases, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-18s %s\n", "mapping", "avg hop-bytes", "total redist time")
	fmt.Printf("%-12s %-18.2f %.3f s\n", "folded", res.FoldedHopBytes, res.FoldedRedistTime)
	fmt.Printf("%-12s %-18.2f %.3f s\n", "linear", res.LinearHopBytes, res.LinearRedistTime)
	return nil
}

func pdaScaling() error {
	fmt.Println("Extension — parallel NNC (paper future work): analysis time vs rank count")
	rows, err := experiments.PDAScaling([]int{1, 4, 16, 60, 180})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-22s %-22s\n", "ranks", "Alg.1 (root NNC)", "parallel NNC")
	for _, r := range rows {
		fmt.Printf("%-8d %8.3f ms (%d nests) %8.3f ms (%d nests)\n",
			r.Ranks, r.RootNNCClock*1e3, r.RootNNCNests, r.ParallelClock*1e3, r.ParallelNests)
	}
	return nil
}

func contention(seed int64) error {
	fmt.Println("Ablation — dynamic-strategy sensitivity to redistribution-prediction calibration")
	m, err := experiments.BGL(1024)
	if err != nil {
		return err
	}
	rows, err := experiments.ContentionSweep(m, 12, seed, []float64{1.0, 1.5, 3.0, math.Inf(1)})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-14s %s\n", "contention estimate", "correct picks", "excess over per-step best")
	for _, r := range rows {
		label := fmt.Sprintf("%.1fx true", r.EstimateFactor)
		if math.IsInf(r.EstimateFactor, 1) {
			label = "ignored"
		}
		fmt.Printf("%-22s %d of %-10d %.2f%%\n", label, r.CorrectPicks, r.Total, r.ExcessPercent)
	}
	return nil
}
