// Command pda runs the parallel data analysis algorithm over a directory
// of split files (written by nestsim or the wrfsim library) and prints the
// detected regions of interest — the standalone version of Algorithm 1.
//
// Usage:
//
//	pda -dir /tmp/splits -step 42 -px 18 -py 15 -n 16
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/pda"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pda: ")
	var (
		dir     = flag.String("dir", ".", "directory containing split files")
		step    = flag.Int("step", 0, "simulation step to analyze")
		px      = flag.Int("px", 18, "WRF process grid width")
		py      = flag.Int("py", 15, "WRF process grid height")
		n       = flag.Int("n", 4, "number of analysis ranks")
		olr     = flag.Float64("olr", 200, "OLR threshold (W/m²)")
		verbose = flag.Bool("v", false, "print per-cluster details")
	)
	flag.Parse()

	grid := geom.NewGrid(*px, *py)
	opt := pda.DefaultOptions()
	opt.OLRThreshold = *olr

	net, err := topology.NewSwitched(*n, 8, topology.DefaultSwitchedParams())
	if err != nil {
		log.Fatal(err)
	}
	world, err := mpi.NewWorld(*n, mpi.Config{Net: net})
	if err != nil {
		log.Fatal(err)
	}
	loader := func(rank int) (wrfsim.Split, error) {
		return wrfsim.ReadSplitFile(filepath.Join(*dir, wrfsim.SplitFileName(*step, rank)))
	}
	res, err := pda.RunParallel(world, grid, loader, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d split files on %d ranks in %.3f ms (modelled)\n",
		grid.Size(), *n, res.RootClock*1e3)
	fmt.Printf("regions of interest: %d\n", len(res.Rects))
	for i, r := range res.Rects {
		fmt.Printf("  nest %d: %v", i+1, r)
		if *verbose {
			c := res.Clusters[i]
			fmt.Printf("  (%d subdomains, mean QCLOUD %.1f)", len(c), c.MeanQCloud())
		}
		fmt.Println()
	}
}
